//! BSP-style mapping of a dataflow graph onto a crossbar tile budget.

use serde::{Deserialize, Serialize};

use cim_arch::MemristorTech;
use cim_device::FaultMap;
use cim_logic::{simd_cost, LogicCost};
use cim_units::Component;
use cim_units::Time;

use crate::graph::{Graph, Node, Op, TensorId};

/// The fabric budget a graph is mapped onto.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Mapper {
    /// Devices per tile.
    pub tile_devices: u64,
    /// Number of tiles.
    pub tiles: u64,
    /// Device technology (costs every step).
    pub tech: MemristorTech,
    /// Live bad-column set: columns field monitoring has retired (worn
    /// out or stuck). [`Mapper::check`] rejects any node whose canonical
    /// column span touches one. Defaults to empty (all columns healthy),
    /// including when deserializing older mapper configs.
    #[serde(default)]
    pub fault_map: FaultMap,
}

/// Why a graph cannot be *legally* mapped onto a [`Mapper`] budget.
///
/// [`Mapper::compile`] is a cost model and will happily produce a plan
/// for an illegal mapping (its `.max(1)` clamps quietly pretend one lane
/// always fits); [`Mapper::check`] / [`Mapper::compile_checked`] reject
/// those graphs with a diagnostic instead.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum MapError {
    /// One lane of a node needs more devices than the node's share of
    /// the capacity at its BSP level — the plan would schedule lanes on
    /// devices that do not exist.
    CapacityExceeded {
        /// The unmappable node's tensor.
        tensor: TensorId,
        /// Its op mnemonic.
        op: String,
        /// Its BSP level.
        level: usize,
        /// Devices one lane of the op requires.
        devices_needed: u64,
        /// Devices the level share actually offers it.
        share: u64,
    },
    /// A node reads the same tensor through two operand ports. Operand
    /// tensors live in crossbar columns; both ports would address the
    /// same columns and the in-place IMPLY sequences would clobber the
    /// shared operand mid-op.
    OperandColumnConflict {
        /// The conflicting node's tensor.
        tensor: TensorId,
        /// Its op mnemonic.
        op: String,
        /// The tensor wired into more than one operand port.
        operand: TensorId,
    },
    /// A node's canonical column span contains a column the mapper's
    /// [`FaultMap`] has retired (worn out or stuck); placing data there
    /// would silently corrupt it. Remap around the bad column instead.
    BadColumn {
        /// The node whose span is unusable.
        tensor: TensorId,
        /// Its op mnemonic.
        op: String,
        /// The retired column inside the span.
        column: usize,
    },
}

impl std::fmt::Display for MapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MapError::CapacityExceeded {
                tensor,
                op,
                level,
                devices_needed,
                share,
            } => write!(
                f,
                "node t{} ({op}, level {level}) needs {devices_needed} devices per lane \
                 but its level share is only {share}",
                tensor.0
            ),
            MapError::OperandColumnConflict {
                tensor,
                op,
                operand,
            } => write!(
                f,
                "node t{} ({op}) reads tensor t{} through two operand ports; both map \
                 to the same crossbar columns (insert an explicit copy)",
                tensor.0, operand.0
            ),
            MapError::BadColumn { tensor, op, column } => write!(
                f,
                "node t{} ({op}) maps onto retired crossbar column {column} \
                 (worn out or stuck); remap around it",
                tensor.0
            ),
        }
    }
}

impl std::error::Error for MapError {}

/// One scheduled node.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlacedOp {
    /// Which tensor this op produces.
    pub tensor: TensorId,
    /// Mnemonic for reports.
    pub op: String,
    /// Dependency level (0 = inputs).
    pub level: usize,
    /// SIMD lanes processed.
    pub lanes: u64,
    /// Sequential waves forced by the capacity limit.
    pub waves: u64,
    /// Cost of this op across all its waves.
    pub cost: LogicCost,
}

/// A scheduled graph with its total cost.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CompiledPlan {
    /// Per-node placements, topological order.
    pub placed: Vec<PlacedOp>,
    /// Number of dependency levels.
    pub levels: usize,
    /// Roll-up: latency along the level sequence, energy summed.
    pub total: LogicCost,
}

impl Mapper {
    /// A single tile the size of the paper's mathematics crossbar
    /// (34 × 10⁶ devices — 10⁶ TC adders).
    pub fn paper_tile() -> Self {
        Self {
            tile_devices: 34_000_000,
            tiles: 1,
            tech: MemristorTech::table1_5nm(),
            fault_map: FaultMap::new(),
        }
    }

    /// A custom budget.
    ///
    /// # Panics
    ///
    /// Panics if either count is zero.
    pub fn with_budget(tile_devices: u64, tiles: u64) -> Self {
        assert!(tile_devices > 0 && tiles > 0, "budget must be non-zero");
        Self {
            tile_devices,
            tiles,
            tech: MemristorTech::table1_5nm(),
            fault_map: FaultMap::new(),
        }
    }

    /// Replaces the live bad-column set (builder style).
    #[must_use]
    pub fn with_fault_map(mut self, fault_map: FaultMap) -> Self {
        self.fault_map = fault_map;
        self
    }

    /// Canonical column span of node `i` at `bits` bits per tensor:
    /// tensors are laid out contiguously in node order, so node `i`'s
    /// data occupies columns `[i·bits, (i+1)·bits)`. The wear-aware
    /// legality check tests this span against the [`FaultMap`].
    pub fn column_span(i: usize, bits: u32) -> std::ops::Range<usize> {
        i * bits as usize..(i + 1) * bits as usize
    }

    /// Total device capacity.
    pub fn capacity(&self) -> u64 {
        self.tile_devices * self.tiles
    }

    /// Per-lane cost of one op at the graph's lane width.
    ///
    /// Adds map to the TC adder (4N+5 steps, N+2 devices); `eq` maps to
    /// the Table-1 comparator per 2-bit symbol slice; bitwise ops map to
    /// per-bit IMPLY gate sequences (NAND = 3 steps / 3 devices as the
    /// unit).
    fn unit_cost(&self, op: &Op, bits: u32) -> Option<LogicCost> {
        let t = self.tech.write_time;
        let e = self.tech.write_energy;
        let per_bit = |steps: u64, devices: usize| LogicCost {
            steps: steps * u64::from(bits),
            devices: devices * bits as usize,
            latency: t * (steps * u64::from(bits)) as f64,
            energy: e * (steps * u64::from(bits)) as f64,
            component: Component::ImplyStep,
        };
        match op {
            Op::Input { .. } | Op::Const { .. } => None,
            Op::Add | Op::ReduceAdd => Some(LogicCost::tc_adder_paper(bits, t, e)),
            Op::Eq => {
                // One comparator per 2-bit slice, slices in parallel, then
                // an AND tree over the slice flags.
                let slices = u64::from(bits.div_ceil(2));
                let cmp = LogicCost::comparator_paper();
                let tree_steps = 5 * (64 - slices.leading_zeros() as u64).max(1);
                Some(LogicCost {
                    steps: cmp.steps + tree_steps,
                    devices: cmp.devices * slices as usize + slices as usize,
                    latency: t * (cmp.steps + tree_steps) as f64,
                    energy: cmp.energy * slices as f64,
                    component: cmp.component,
                })
            }
            Op::Lt => {
                // A TC subtractor: invert one operand (per-bit NOT) and
                // add with carry-in.
                let adder = LogicCost::tc_adder_paper(bits, t, e);
                let not = per_bit(2, 2);
                Some(adder.then(&not))
            }
            Op::And | Op::Or => Some(per_bit(5, 4)),
            Op::Xor => Some(per_bit(12, 7)),
            Op::Not => Some(per_bit(2, 2)),
        }
    }

    /// Checks that `graph` can be *legally* mapped onto this budget:
    /// every costed node's unit fits its level share (no lanes scheduled
    /// onto devices that don't exist), no node reads one tensor through
    /// two operand ports (no register-to-column conflict), and no node's
    /// canonical column span ([`Mapper::column_span`]) touches a column
    /// the [`FaultMap`] has retired.
    pub fn check(&self, graph: &Graph) -> Result<(), MapError> {
        // Wear-aware legality: every node's tensor — input, const, or
        // computed — lives in its canonical columns; none may be bad.
        if !self.fault_map.is_empty() {
            for (i, node) in graph.nodes().iter().enumerate() {
                let span = Self::column_span(i, graph.bits());
                if let Some(column) = self.fault_map.bad_in(span) {
                    return Err(MapError::BadColumn {
                        tensor: TensorId(i),
                        op: node.op.mnemonic().to_string(),
                        column,
                    });
                }
            }
        }
        for (i, node) in graph.nodes().iter().enumerate() {
            if self.unit_cost(&node.op, graph.bits()).is_none() {
                continue;
            }
            for (k, operand) in node.inputs.iter().enumerate() {
                if node.inputs[..k].contains(operand) {
                    return Err(MapError::OperandColumnConflict {
                        tensor: TensorId(i),
                        op: node.op.mnemonic().to_string(),
                        operand: *operand,
                    });
                }
            }
        }
        let levels = assign_levels(graph.nodes());
        let max_level = levels.iter().copied().max().unwrap_or(0);
        for level in 0..=max_level {
            let member_ids: Vec<usize> = (0..graph.nodes().len())
                .filter(|&i| levels[i] == level)
                .filter(|&i| self.unit_cost(&graph.nodes()[i].op, graph.bits()).is_some())
                .collect();
            if member_ids.is_empty() {
                continue;
            }
            let share = self.capacity() / member_ids.len() as u64;
            for &i in &member_ids {
                let unit = self
                    .unit_cost(&graph.nodes()[i].op, graph.bits())
                    .expect("filtered to costed ops");
                if unit.devices as u64 > share {
                    return Err(MapError::CapacityExceeded {
                        tensor: TensorId(i),
                        op: graph.nodes()[i].op.mnemonic().to_string(),
                        level,
                        devices_needed: unit.devices as u64,
                        share,
                    });
                }
            }
        }
        Ok(())
    }

    /// [`Mapper::check`] followed by [`Mapper::compile`]: the compiler's
    /// verified lowering path. Prefer this over bare `compile` anywhere a
    /// graph's legality is not already established.
    ///
    /// # Errors
    ///
    /// Returns the first [`MapError`] found, naming the offending node.
    pub fn compile_checked(&self, graph: &Graph) -> Result<CompiledPlan, MapError> {
        self.check(graph)?;
        Ok(self.compile(graph))
    }

    /// Schedules `graph`, returning the plan.
    ///
    /// Model (documented in DESIGN.md): nodes execute level by level
    /// (BSP); within a level the capacity is divided evenly among the
    /// level's ops; lanes beyond an op's share run as sequential waves;
    /// a level's latency is its slowest op; reductions run `⌈log₂ n⌉`
    /// sequential tree stages.
    ///
    /// `compile` is a pure cost model: it does **not** reject illegal
    /// mappings (see [`MapError`]); use [`Mapper::compile_checked`] when
    /// legality matters.
    pub fn compile(&self, graph: &Graph) -> CompiledPlan {
        let levels = assign_levels(graph.nodes());
        let max_level = levels.iter().copied().max().unwrap_or(0);
        let mut placed = Vec::new();
        let mut total = LogicCost::default();
        for level in 0..=max_level {
            let member_ids: Vec<usize> = (0..graph.nodes().len())
                .filter(|&i| levels[i] == level)
                .filter(|&i| self.unit_cost(&graph.nodes()[i].op, graph.bits()).is_some())
                .collect();
            if member_ids.is_empty() {
                continue;
            }
            let share = (self.capacity() / member_ids.len() as u64).max(1);
            let mut level_latency = Time::ZERO;
            for &i in &member_ids {
                let node = &graph.nodes()[i];
                let unit = self
                    .unit_cost(&node.op, graph.bits())
                    .expect("filtered to costed ops");
                let (lanes, stages) = match node.op {
                    // A reduction processes n/2 pairs per stage, log n
                    // stages.
                    Op::ReduceAdd => {
                        let n = graph.nodes()[node.inputs[0].0].len as u64;
                        ((n / 2).max(1), (64 - n.leading_zeros() as u64).max(1))
                    }
                    _ => (node.len as u64, 1),
                };
                let lanes_per_wave = (share / unit.devices as u64).max(1);
                let waves = lanes.div_ceil(lanes_per_wave) * stages;
                let one_wave = simd_cost(&unit, lanes.min(lanes_per_wave));
                let cost = LogicCost {
                    steps: one_wave.steps * waves,
                    devices: one_wave.devices,
                    latency: one_wave.latency * waves as f64,
                    energy: unit.energy * (lanes * stages) as f64,
                    component: unit.component,
                };
                level_latency = level_latency.max(cost.latency);
                total.energy += cost.energy;
                total.steps += cost.steps;
                total.devices = total.devices.max(cost.devices);
                placed.push(PlacedOp {
                    tensor: TensorId(i),
                    op: node.op.mnemonic().to_string(),
                    level,
                    lanes,
                    waves,
                    cost,
                });
            }
            total.latency += level_latency;
        }
        CompiledPlan {
            placed,
            levels: max_level + 1,
            total,
        }
    }
}

/// Longest-path level assignment over the DAG.
fn assign_levels(nodes: &[Node]) -> Vec<usize> {
    let mut levels = vec![0usize; nodes.len()];
    for (i, node) in nodes.iter().enumerate() {
        levels[i] = node
            .inputs
            .iter()
            .map(|t| levels[t.0] + 1)
            .max()
            .unwrap_or(0);
    }
    levels
}

impl std::fmt::Display for CompiledPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "{:<4} {:<8} {:>8} {:>6} {:>28}",
            "lvl", "op", "lanes", "waves", "cost"
        )?;
        for p in &self.placed {
            writeln!(
                f,
                "{:<4} {:<8} {:>8} {:>6} {:>28}",
                p.level,
                p.op,
                p.lanes,
                p.waves,
                p.cost.to_string()
            )?;
        }
        write!(f, "total over {} levels: {}", self.levels, self.total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;

    fn count_graph(lanes: usize) -> Graph {
        let mut b = GraphBuilder::new(8);
        let data = b.input(lanes);
        let k = b.broadcast(1, lanes);
        let sum = b.add(data, k);
        let target = b.broadcast(4, lanes);
        let mask = b.eq(sum, target);
        let count = b.count_ones(mask);
        b.finish(vec![count])
    }

    #[test]
    fn plan_covers_every_costed_node() {
        let graph = count_graph(64);
        let plan = Mapper::paper_tile().compile(&graph);
        // add, eq, reduce+ are costed; inputs/consts are free.
        assert_eq!(plan.placed.len(), 3);
        assert_eq!(plan.levels, 4); // inputs, add, eq, reduce
        assert!(plan.total.latency.get() > 0.0);
        assert!(plan.total.energy.get() > 0.0);
    }

    #[test]
    fn abundant_capacity_needs_single_waves() {
        let graph = count_graph(64);
        let plan = Mapper::paper_tile().compile(&graph);
        for p in plan.placed.iter().filter(|p| p.op != "reduce+") {
            assert_eq!(p.waves, 1, "{} should fit in one wave", p.op);
        }
    }

    #[test]
    fn tight_capacity_forces_waves() {
        let graph = count_graph(64);
        // Room for ~6 eight-bit adders (10 devices each) at a time.
        let plan = Mapper::with_budget(64, 1).compile(&graph);
        let add = plan.placed.iter().find(|p| p.op == "add").expect("add");
        assert!(add.waves >= 10, "waves {}", add.waves);
        // Latency scales with the waves.
        let roomy = Mapper::paper_tile().compile(&graph);
        assert!(plan.total.latency.get() > 10.0 * roomy.total.latency.get());
    }

    #[test]
    fn reduction_pays_log_stages() {
        let graph = count_graph(1024);
        let plan = Mapper::paper_tile().compile(&graph);
        let red = plan.placed.iter().find(|p| p.op == "reduce+").expect("r");
        // 1024 lanes -> 512 pairs in wave 1, 11 stages total.
        assert!(red.waves >= 10, "stages {}", red.waves);
    }

    #[test]
    fn energy_scales_with_lanes_not_capacity() {
        let small = Mapper::with_budget(1_000, 1).compile(&count_graph(64));
        let large = Mapper::paper_tile().compile(&count_graph(64));
        let rel = small.total.energy.get() / large.total.energy.get();
        assert!((rel - 1.0).abs() < 1e-9, "energy must not depend on tiling");
    }

    #[test]
    fn independent_ops_share_a_level() {
        let mut b = GraphBuilder::new(8);
        let x = b.input(8);
        let y = b.input(8);
        let s1 = b.add(x, y); // level 1
        let s2 = b.xor(x, y); // level 1
        let s3 = b.and(s1, s2); // level 2
        let graph = b.finish(vec![s3]);
        let plan = Mapper::paper_tile().compile(&graph);
        let lvl = |name: &str| {
            plan.placed
                .iter()
                .find(|p| p.op == name)
                .map(|p| p.level)
                .expect("placed")
        };
        assert_eq!(lvl("add"), lvl("xor"));
        assert_eq!(lvl("and"), lvl("add") + 1);
    }

    #[test]
    fn check_accepts_legal_graphs() {
        let graph = count_graph(64);
        assert_eq!(Mapper::paper_tile().check(&graph), Ok(()));
        let plan = Mapper::paper_tile().compile_checked(&graph).expect("legal");
        assert_eq!(plan, Mapper::paper_tile().compile(&graph));
    }

    #[test]
    fn check_rejects_units_larger_than_their_share() {
        // An 8-bit eq needs 4 comparators (13 devices) + 4 tree flags =
        // 56 devices per lane; a 16-device tile cannot host one lane.
        let graph = count_graph(64);
        let err = Mapper::with_budget(16, 1).check(&graph).unwrap_err();
        match err {
            MapError::CapacityExceeded {
                op,
                devices_needed,
                share,
                ..
            } => {
                assert!(devices_needed > share, "{op}: {devices_needed} vs {share}");
            }
            other => panic!("expected CapacityExceeded, got {other:?}"),
        }
        // …and compile() silently produces a plan for the same graph.
        let _ = Mapper::with_budget(16, 1).compile(&graph);
    }

    #[test]
    fn check_rejects_operand_column_conflicts() {
        let mut b = GraphBuilder::new(8);
        let x = b.input(8);
        let doubled = b.add(x, x); // both ports read x's columns
        let graph = b.finish(vec![doubled]);
        let err = Mapper::paper_tile().check(&graph).unwrap_err();
        assert!(
            matches!(&err, MapError::OperandColumnConflict { operand, .. } if *operand == x),
            "{err:?}"
        );
        assert!(err.to_string().contains("two operand ports"), "{err}");
    }

    #[test]
    fn check_rejects_placements_onto_retired_columns() {
        let graph = count_graph(64);
        // Retire a column inside node 2's canonical span (8-bit tensors:
        // node 2 owns columns [16, 24)).
        let mapper = Mapper::paper_tile().with_fault_map(FaultMap::from_columns([19]));
        let err = mapper.check(&graph).unwrap_err();
        match err {
            MapError::BadColumn { tensor, column, .. } => {
                assert_eq!(tensor, TensorId(2));
                assert_eq!(column, 19);
            }
            other => panic!("expected BadColumn, got {other:?}"),
        }
        assert!(err.to_string().contains("column 19"), "{err}");
        // A bad column beyond every span leaves the graph legal.
        let clear =
            Mapper::paper_tile()
                .with_fault_map(FaultMap::from_columns([graph.nodes().len() * 8 + 1]));
        assert_eq!(clear.check(&graph), Ok(()));
    }

    #[test]
    fn display_lists_all_ops() {
        let plan = Mapper::paper_tile().compile(&count_graph(16));
        let text = plan.to_string();
        assert!(text.contains("add"));
        assert!(text.contains("reduce+"));
        assert!(text.contains("total over"));
    }
}
