//! Pre-built query kernels — the in-memory-database workload class.
//!
//! Section II.B of the paper lists "in memory computing/database" among
//! the data-centric alternatives ("storage of the complete database
//! working set in the main memory of dedicated servers"). CIM takes the
//! same idea one step further: the table column *lives in the crossbar*
//! and predicates evaluate in-array. These helpers build the standard
//! scan shapes as [`Graph`]s.

use crate::graph::{Graph, GraphBuilder};

/// `SELECT COUNT(*) WHERE col = value` over a `lanes`-row column.
pub fn select_count_eq(bits: u32, lanes: usize, value: u64) -> Graph {
    let mut b = GraphBuilder::new(bits);
    let col = b.input(lanes);
    let v = b.broadcast(value, lanes);
    let mask = b.eq(col, v);
    let count = b.count_ones(mask);
    b.finish(vec![count])
}

/// `SELECT COUNT(*) WHERE lo <= col <= hi`.
///
/// # Panics
///
/// Panics if `hi` overflows the lane width when incremented.
pub fn select_count_range(bits: u32, lanes: usize, lo: u64, hi: u64) -> Graph {
    let mask = if bits == 64 {
        u64::MAX
    } else {
        (1u64 << bits) - 1
    };
    assert!(hi < mask, "hi + 1 must fit the lane width");
    let mut b = GraphBuilder::new(bits);
    let col = b.input(lanes);
    let lo_v = b.broadcast(lo, lanes);
    let hi1_v = b.broadcast(hi + 1, lanes);
    let below = b.lt(col, lo_v);
    let not_below = b.not(below);
    let within = b.lt(col, hi1_v);
    let in_range = b.and(not_below, within);
    let count = b.count_ones(in_range);
    b.finish(vec![count])
}

/// `SELECT SUM(col) WHERE col < threshold` (masked aggregation): the
/// predicate mask gates the values via `AND` with a widened mask.
pub fn sum_where_lt(bits: u32, lanes: usize, threshold: u64) -> Graph {
    let mut b = GraphBuilder::new(bits);
    let col = b.input(lanes);
    let t = b.broadcast(threshold, lanes);
    let mask01 = b.lt(col, t);
    // Widen the 0/1 mask to all-ones/all-zeros: 0 − mask in two's
    // complement is ¬mask + 1; all-ones == wrapping −1. Build it as
    // (¬mask01 + 1) over the lane width.
    let not_mask = b.not(mask01);
    let one = b.broadcast(1, lanes);
    let wide_mask = b.add(not_mask, one); // 0 -> 0, 1 -> ¬1+1 = …1110+1? see below
                                          // ¬0 + 1 = mask+1 ≡ 0 (all-zeros); ¬1 + 1 = all-ones − 1 + 1 = all-ones… off by
                                          // construction: ¬1 = 0xFE, +1 = 0xFF on 8 bits. Exactly the widening we need.
    let gated = b.and(col, wide_mask);
    let sum = b.reduce_add(gated);
    b.finish(vec![sum])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn column() -> Vec<u64> {
        vec![3, 17, 17, 200, 17, 42, 0, 255, 100, 17]
    }

    #[test]
    fn count_eq_matches_scan() {
        let graph = select_count_eq(8, 10, 17);
        let out = graph.evaluate(std::slice::from_ref(&column()));
        assert_eq!(out[0], vec![4]);
    }

    #[test]
    fn count_range_matches_scan() {
        let graph = select_count_range(8, 10, 10, 100);
        let out = graph.evaluate(std::slice::from_ref(&column()));
        let expect = column()
            .iter()
            .filter(|&&v| (10..=100).contains(&v))
            .count() as u64;
        assert_eq!(out[0], vec![expect]);
    }

    #[test]
    fn sum_where_lt_matches_scan() {
        let graph = sum_where_lt(8, 10, 50);
        let out = graph.evaluate(std::slice::from_ref(&column()));
        let expect: u64 = column().iter().filter(|&&v| v < 50).sum::<u64>() & 0xFF;
        assert_eq!(out[0], vec![expect]);
    }

    #[test]
    fn widened_mask_gates_exactly() {
        // All lanes pass / no lanes pass edge cases.
        let graph = sum_where_lt(8, 4, 255);
        let out = graph.evaluate(&[vec![1, 2, 3, 4]]);
        assert_eq!(out[0], vec![10]);
        let graph = sum_where_lt(8, 4, 0);
        let out = graph.evaluate(&[vec![1, 2, 3, 4]]);
        assert_eq!(out[0], vec![0]);
    }

    #[test]
    #[should_panic(expected = "hi + 1 must fit")]
    fn range_rejects_overflow() {
        let _ = select_count_range(8, 4, 0, 255);
    }
}
