//! Property tests: IR semantics vs native arithmetic, mapper invariants.

use cim_compiler::{GraphBuilder, Mapper};
use proptest::prelude::*;

proptest! {
    #[test]
    fn add_matches_wrapping_arithmetic(
        a in prop::collection::vec(0u64..256, 1..32),
        k in 0u64..256,
    ) {
        let mut b = GraphBuilder::new(8);
        let x = b.input(a.len());
        let c = b.broadcast(k, a.len());
        let sum = b.add(x, c);
        let graph = b.finish(vec![sum]);
        let out = graph.evaluate(std::slice::from_ref(&a));
        let expect: Vec<u64> = a.iter().map(|&v| (v + k) & 0xFF).collect();
        prop_assert_eq!(&out[0], &expect);
    }

    #[test]
    fn eq_matches_native_equality(
        a in prop::collection::vec(0u64..4096, 1..24),
        b_vals in prop::collection::vec(0u64..4096, 1..24),
    ) {
        let n = a.len().min(b_vals.len());
        let (a, b_vals) = (&a[..n], &b_vals[..n]);
        let mut b = GraphBuilder::new(12);
        let x = b.input(n);
        let y = b.input(n);
        let eq = b.eq(x, y);
        let graph = b.finish(vec![eq]);
        let out = graph.evaluate(&[a.to_vec(), b_vals.to_vec()]);
        let expect: Vec<u64> = a.iter().zip(b_vals).map(|(p, q)| u64::from(p == q)).collect();
        prop_assert_eq!(&out[0], &expect);
    }

    #[test]
    fn reduce_add_matches_wrapping_sum(
        a in prop::collection::vec(0u64..65536, 1..64),
    ) {
        let mut b = GraphBuilder::new(16);
        let x = b.input(a.len());
        let total = b.reduce_add(x);
        let graph = b.finish(vec![total]);
        let out = graph.evaluate(std::slice::from_ref(&a));
        let expect = a.iter().fold(0u64, |acc, &v| (acc + v) & 0xFFFF);
        prop_assert_eq!(out[0][0], expect);
    }

    #[test]
    fn mapper_latency_never_improves_with_less_capacity(
        lanes in 1usize..512,
        budget_small in 100u64..1_000,
        extra in 1u64..1_000,
    ) {
        let mut b = GraphBuilder::new(8);
        let x = b.input(lanes);
        let k = b.broadcast(1, lanes);
        let s = b.add(x, k);
        let graph = b.finish(vec![s]);
        let small = Mapper::with_budget(budget_small, 1).compile(&graph);
        let large = Mapper::with_budget(budget_small + extra, 1).compile(&graph);
        prop_assert!(large.total.latency.get() <= small.total.latency.get() + 1e-15);
        // Energy must be identical: it is work, not capacity.
        prop_assert!((large.total.energy.get() - small.total.energy.get()).abs() < 1e-18);
    }

    #[test]
    fn levels_respect_dependencies(depth in 1usize..8) {
        // A chain of `depth` adds must occupy `depth` costed levels.
        let mut b = GraphBuilder::new(8);
        let mut cur = b.input(4);
        let one = b.broadcast(1, 4);
        for _ in 0..depth {
            cur = b.add(cur, one);
        }
        let graph = b.finish(vec![cur]);
        let plan = Mapper::paper_tile().compile(&graph);
        let max_level = plan.placed.iter().map(|p| p.level).max().expect("ops");
        let min_level = plan.placed.iter().map(|p| p.level).min().expect("ops");
        prop_assert_eq!(plan.placed.len(), depth);
        prop_assert_eq!(max_level - min_level + 1, depth);
    }
}
