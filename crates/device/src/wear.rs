//! Endurance and retention bookkeeping.

use cim_units::{Time, Voltage};
use serde::{Deserialize, Serialize};

use crate::memristor::Memristor;
use crate::DeviceError;

/// Wraps a device and tracks write endurance and retention age.
///
/// Section IV of the paper quotes > 10¹² cycles for TaOx VCM and > 10¹⁰
/// for Ag-GeSe ECM, and > 10 years extrapolated retention. `WearTracking`
/// counts *state-flipping* switching events and the time since the last
/// refresh, surfacing [`DeviceError`]s when the technology's ratings are
/// exceeded — the hook used by the failure-injection tests.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WearTracking<D> {
    inner: D,
    cycles: u64,
    rated_cycles: u64,
    age: Time,
    rated_retention: Time,
    was_lrs: bool,
}

impl<D: Memristor> WearTracking<D> {
    /// Starts tracking `device` against the given ratings.
    pub fn new(device: D, rated_cycles: u64, rated_retention: Time) -> Self {
        let was_lrs = device.is_lrs();
        Self {
            inner: device,
            cycles: 0,
            rated_cycles,
            age: Time::ZERO,
            rated_retention,
            was_lrs,
        }
    }

    /// Switching cycles consumed so far.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Time since the last write (retention age).
    pub fn age(&self) -> Time {
        self.age
    }

    /// Read access to the wrapped device.
    pub fn inner(&self) -> &D {
        &self.inner
    }

    /// Consumes the wrapper, returning the underlying device.
    pub fn into_inner(self) -> D {
        self.inner
    }

    /// Applies a pulse, returning an error if a rating is violated.
    ///
    /// # Errors
    ///
    /// [`DeviceError::EnduranceExhausted`] once the flip count passes the
    /// rated endurance; the pulse is still applied (real devices degrade,
    /// they don't stop).
    pub fn try_apply(&mut self, v: Voltage, dt: Time) -> Result<(), DeviceError> {
        self.inner.apply(v, dt);
        let now_lrs = self.inner.is_lrs();
        if now_lrs == self.was_lrs {
            self.age += dt;
        } else {
            self.cycles += 1;
            self.age = Time::ZERO;
            self.was_lrs = now_lrs;
        }
        if self.cycles > self.rated_cycles {
            return Err(DeviceError::EnduranceExhausted {
                cycles: self.cycles,
                rated: self.rated_cycles,
            });
        }
        Ok(())
    }

    /// Advances idle time, checking retention.
    ///
    /// # Errors
    ///
    /// [`DeviceError::RetentionViolated`] when the stored state has been
    /// held longer than the rated retention without a refresh.
    pub fn idle(&mut self, dt: Time) -> Result<(), DeviceError> {
        self.age += dt;
        if self.age.get() > self.rated_retention.get() {
            return Err(DeviceError::RetentionViolated);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DeviceParams, ThresholdDevice};

    fn tracked(rated_cycles: u64) -> (WearTracking<ThresholdDevice>, DeviceParams) {
        let p = DeviceParams::table1_cim();
        (
            WearTracking::new(
                ThresholdDevice::new_hrs(p.clone()),
                rated_cycles,
                Time::from_seconds(10.0),
            ),
            p,
        )
    }

    #[test]
    fn counts_only_state_flips() {
        let (mut d, p) = tracked(1_000);
        d.try_apply(p.write_voltage, p.write_time).expect("fresh");
        assert_eq!(d.cycles(), 1);
        // Re-writing the same value does not consume endurance.
        d.try_apply(p.write_voltage, p.write_time).expect("fresh");
        assert_eq!(d.cycles(), 1);
        d.try_apply(-p.write_voltage, p.write_time).expect("fresh");
        assert_eq!(d.cycles(), 2);
    }

    #[test]
    fn endurance_exhaustion_surfaces_as_error() {
        let (mut d, p) = tracked(3);
        for i in 0..3 {
            let v = if i % 2 == 0 {
                p.write_voltage
            } else {
                -p.write_voltage
            };
            d.try_apply(v, p.write_time).expect("within rating");
        }
        let err = d
            .try_apply(-p.write_voltage, p.write_time)
            .expect_err("over rating");
        assert!(matches!(
            err,
            DeviceError::EnduranceExhausted {
                cycles: 4,
                rated: 3
            }
        ));
    }

    #[test]
    fn retention_violation_after_idle() {
        let (mut d, _) = tracked(10);
        d.idle(Time::from_seconds(9.0)).expect("within retention");
        let err = d.idle(Time::from_seconds(2.0)).expect_err("expired");
        assert_eq!(err, DeviceError::RetentionViolated);
    }

    #[test]
    fn writes_reset_retention_age() {
        let (mut d, p) = tracked(10);
        d.idle(Time::from_seconds(9.0)).expect("within retention");
        d.try_apply(p.write_voltage, p.write_time).expect("write");
        assert_eq!(d.age(), Time::ZERO);
        d.idle(Time::from_seconds(9.0)).expect("age was reset");
    }

    #[test]
    fn inner_access() {
        let (d, _) = tracked(1);
        assert!(d.inner().is_hrs());
        assert!(d.into_inner().is_hrs());
    }
}
