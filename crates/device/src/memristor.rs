//! The behavioural trait shared by every device model.

use cim_units::{Conductance, Current, Resistance, Time, Voltage};

/// Electrical polarity of a bipolar resistive switch.
///
/// A [`Polarity::Forward`] device SETs (switches towards its low-resistive
/// state) under positive applied voltage and RESETs under negative voltage;
/// [`Polarity::Reversed`] swaps the two. Anti-serial pairs of opposite
/// polarity form a complementary resistive switch ([`crate::Crs`]).
#[derive(
    Debug, Default, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize,
)]
pub enum Polarity {
    /// Positive voltage SETs, negative voltage RESETs.
    #[default]
    Forward,
    /// Negative voltage SETs, positive voltage RESETs.
    Reversed,
}

impl Polarity {
    /// The voltage as seen in the device's own SET-positive frame.
    pub fn oriented(self, v: Voltage) -> Voltage {
        match self {
            Polarity::Forward => v,
            Polarity::Reversed => -v,
        }
    }
}

/// Any two-terminal resistive element that evolves under voltage pulses.
///
/// Implementations are *state machines driven by voltage-time pulses*: the
/// crossbar and logic layers decompose whatever waveform they produce into
/// piecewise-constant `(voltage, duration)` segments and feed them to
/// [`TwoTerminal::apply`]. Between pulses the element holds its state
/// (non-volatility is the whole point of the technology — the paper's
/// "practically zero leakage" argument).
///
/// Single filamentary switches additionally implement [`Memristor`];
/// composite cells like the anti-serial [`crate::Crs`] implement only this
/// trait, since their internal state is not a single scalar.
pub trait TwoTerminal {
    /// Present two-terminal resistance.
    fn resistance(&self) -> Resistance;

    /// Applies `v` across the element for duration `dt`, evolving state.
    fn apply(&mut self, v: Voltage, dt: Time);

    /// Present conductance (`1/R`).
    fn conductance(&self) -> Conductance {
        self.resistance().to_conductance()
    }

    /// The current that flows if `v` is applied *right now* (no state
    /// evolution) — used by read circuits and the nodal solver.
    fn current_at(&self, v: Voltage) -> Current {
        v / self.resistance()
    }
}

/// A two-terminal memristive device with a scalar internal state.
///
/// The internal state is exposed as a normalised coordinate `x ∈ [0, 1]`
/// where `1` is the fully-formed low-resistive state (LRS) and `0` the
/// high-resistive state (HRS). Binary data is conventionally encoded
/// LRS = logic 1, HRS = logic 0.
pub trait Memristor: TwoTerminal {
    /// Normalised internal state, `0.0` = fully HRS … `1.0` = fully LRS.
    fn state(&self) -> f64;

    /// Forces the internal state (used to initialise arrays and by tests).
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `x` is outside `[0, 1]`.
    fn set_state(&mut self, x: f64);

    /// True if the device is in (or near) its low-resistive state.
    fn is_lrs(&self) -> bool {
        self.state() >= 0.5
    }

    /// True if the device is in (or near) its high-resistive state.
    fn is_hrs(&self) -> bool {
        !self.is_lrs()
    }

    /// The stored bit under the LRS=1 / HRS=0 convention.
    fn as_bit(&self) -> bool {
        self.is_lrs()
    }

    /// Writes a bit by forcing the corresponding saturated state.
    ///
    /// This is the "ideal programming" path used to initialise experiments;
    /// electrically accurate writes go through [`TwoTerminal::apply`].
    fn write_bit(&mut self, bit: bool) {
        self.set_state(if bit { 1.0 } else { 0.0 });
    }
}

/// Clamps a state coordinate to the valid `[0, 1]` interval.
pub(crate) fn clamp_state(x: f64) -> f64 {
    x.clamp(0.0, 1.0)
}

/// Number of integration substeps for a pulse of duration `dt` given a
/// characteristic switching time `tau`: enough that each substep moves the
/// state by at most ~2%, bounded to keep pathological pulses cheap.
pub(crate) fn substeps(dt: Time, tau: Time) -> u32 {
    if tau.get() <= 0.0 {
        return 1;
    }
    let ratio = dt.get() / tau.get();
    (ratio * 50.0).ceil().clamp(1.0, 10_000.0) as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn polarity_orients_voltages() {
        let v = Voltage::from_volts(1.5);
        assert_eq!(Polarity::Forward.oriented(v), v);
        assert_eq!(Polarity::Reversed.oriented(v), -v);
        assert_eq!(Polarity::Reversed.oriented(-v), v);
    }

    #[test]
    fn substep_counts_are_bounded() {
        let tau = Time::from_pico_seconds(200.0);
        assert_eq!(substeps(Time::ZERO, tau), 1);
        assert!(substeps(Time::from_pico_seconds(200.0), tau) >= 50);
        assert_eq!(substeps(Time::from_seconds(1.0), tau), 10_000);
        assert_eq!(substeps(Time::from_pico_seconds(1.0), Time::ZERO), 1);
    }

    #[test]
    fn clamp_state_bounds() {
        assert_eq!(clamp_state(-0.5), 0.0);
        assert_eq!(clamp_state(0.25), 0.25);
        assert_eq!(clamp_state(7.0), 1.0);
    }
}
