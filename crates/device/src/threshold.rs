//! VTEAM-style threshold-kinetics bipolar switch.

use cim_units::{Resistance, Time, Voltage};
use serde::{Deserialize, Serialize};

use crate::memristor::{clamp_state, substeps, Memristor, Polarity, TwoTerminal};
use crate::DeviceParams;

/// A bipolar resistive switch with threshold voltages and strongly
/// non-linear switching kinetics.
///
/// This is the workhorse model of the simulator (storage cells, IMPLY
/// logic, CRS halves). It follows the VTEAM modelling approach: the state
/// does not move at all below the threshold voltages, and above them it
/// moves with a power-law dependence on the overdrive,
///
/// ```text
/// dx/dt =  k_set   · ((v − v_set)/v_set)^α      for v >  v_set
/// dx/dt = −k_reset · ((|v| − v_reset)/v_reset)^α for v < −v_reset
/// dx/dt =  0                                     otherwise
/// ```
///
/// with `k` calibrated by [`DeviceParams`] so a full switch at the nominal
/// write voltage takes exactly the technology's write time (Table 1:
/// 200 ps). The threshold + non-linearity combination is what makes
/// half-select (V/2) bias schemes and IMPLY conditional switching work.
///
/// The resistance interpolates linearly between `r_off` and `r_on`,
/// `R(x) = x·r_on + (1 − x)·r_off`, as in the VTEAM/IMPLY simulation
/// literature. Linear interpolation matters for stateful logic: a
/// partially-SET device already conducts well, so self-limiting SET
/// transitions (load-line equilibria in IMPLY and CRS cells) saturate deep
/// in the LRS instead of stalling at an ambiguous mid-state.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ThresholdDevice {
    params: DeviceParams,
    polarity: Polarity,
    /// Normalised filament state; 0 = HRS, 1 = LRS.
    x: f64,
}

impl ThresholdDevice {
    /// Creates a device in the fully high-resistive (erased, logic 0) state.
    ///
    /// # Panics
    ///
    /// Panics if `params` fails [`DeviceParams::validate`].
    pub fn new_hrs(params: DeviceParams) -> Self {
        Self::with_state(params, 0.0)
    }

    /// Creates a device in the fully low-resistive (logic 1) state.
    ///
    /// # Panics
    ///
    /// Panics if `params` fails [`DeviceParams::validate`].
    pub fn new_lrs(params: DeviceParams) -> Self {
        Self::with_state(params, 1.0)
    }

    /// Creates a device at an arbitrary initial state.
    ///
    /// # Panics
    ///
    /// Panics if `params` is inconsistent or `x ∉ [0, 1]`.
    pub fn with_state(params: DeviceParams, x: f64) -> Self {
        params.validate();
        assert!((0.0..=1.0).contains(&x), "state must lie in [0, 1]");
        Self {
            params,
            polarity: Polarity::Forward,
            x,
        }
    }

    /// Returns the same device with the given electrical polarity.
    pub fn with_polarity(mut self, polarity: Polarity) -> Self {
        self.polarity = polarity;
        self
    }

    /// The technology parameters this device was built from.
    pub fn params(&self) -> &DeviceParams {
        &self.params
    }

    /// The device's electrical polarity.
    pub fn polarity(&self) -> Polarity {
        self.polarity
    }

    /// State derivative at oriented voltage `v` (per second).
    fn dx_dt(&self, v: Voltage) -> f64 {
        let p = &self.params;
        if v.get() > p.v_set.get() {
            p.switching_rate(v, p.v_set)
        } else if v.get() < -p.v_reset.get() {
            -p.switching_rate(v, p.v_reset)
        } else {
            0.0
        }
    }
}

impl Memristor for ThresholdDevice {
    fn state(&self) -> f64 {
        self.x
    }

    fn set_state(&mut self, x: f64) {
        debug_assert!((0.0..=1.0).contains(&x), "state must lie in [0, 1]");
        self.x = clamp_state(x);
    }
}

impl TwoTerminal for ThresholdDevice {
    fn resistance(&self) -> Resistance {
        let p = &self.params;
        Resistance::new(self.x * p.r_on.get() + (1.0 - self.x) * p.r_off.get())
    }

    fn apply(&mut self, v: Voltage, dt: Time) {
        let v = self.polarity.oriented(v);
        let rate = self.dx_dt(v);
        if rate == 0.0 || dt.get() <= 0.0 {
            return;
        }
        // The rate is constant for a constant applied voltage, so a single
        // explicit step is exact; substeps only matter for callers that
        // want intermediate clamping, which clamping at the end subsumes.
        let n = substeps(dt, Time::new(1.0 / rate.abs()));
        let h = dt.get() / f64::from(n);
        for _ in 0..n {
            self.x = clamp_state(self.x + rate * h);
            if self.x == 0.0 && rate < 0.0 || self.x == 1.0 && rate > 0.0 {
                break;
            }
        }
        // Regenerative SET: past the mid-state the filament completes on
        // its own (current runaway), independent of the external load.
        if self.params.abrupt_set && rate > 0.0 && self.x >= 0.5 {
            self.x = 1.0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cim_units::Voltage;

    fn dev() -> ThresholdDevice {
        ThresholdDevice::new_hrs(DeviceParams::table1_cim())
    }

    #[test]
    fn nominal_write_sets_in_write_time() {
        let mut d = dev();
        let p = d.params().clone();
        d.apply(p.write_voltage, p.write_time);
        assert!((d.state() - 1.0).abs() < 1e-9);
        assert!(d.is_lrs());
        assert!(d.as_bit());
    }

    #[test]
    fn nominal_reset_clears_in_write_time() {
        let p = DeviceParams::table1_cim();
        let mut d = ThresholdDevice::new_lrs(p.clone());
        d.apply(-p.write_voltage, p.write_time);
        assert!(d.state() < 1e-9);
        assert!(d.is_hrs());
    }

    #[test]
    fn half_select_does_not_disturb() {
        let mut d = dev();
        let p = d.params().clone();
        // V/2 of a 2 V write is exactly the 1 V threshold: zero overdrive.
        for _ in 0..1_000 {
            d.apply(p.write_voltage / 2.0, p.write_time);
        }
        assert_eq!(d.state(), 0.0);
    }

    #[test]
    fn sub_threshold_reads_do_not_disturb() {
        let p = DeviceParams::table1_cim();
        let mut d = ThresholdDevice::new_lrs(p.clone());
        for _ in 0..1_000 {
            d.apply(Voltage::from_milli_volts(300.0), p.write_time);
            d.apply(Voltage::from_milli_volts(-300.0), p.write_time);
        }
        assert_eq!(d.state(), 1.0);
    }

    #[test]
    fn partial_pulses_accumulate() {
        let mut d = dev();
        let p = d.params().clone();
        // Four quarter-length pulses at nominal voltage = one full write.
        for _ in 0..4 {
            d.apply(p.write_voltage, p.write_time / 4.0);
        }
        assert!((d.state() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn resistance_endpoints_match_params() {
        let p = DeviceParams::table1_cim();
        let hrs = ThresholdDevice::new_hrs(p.clone());
        let lrs = ThresholdDevice::new_lrs(p.clone());
        assert!((hrs.resistance() / p.r_off - 1.0).abs() < 1e-12);
        assert!((lrs.resistance() / p.r_on - 1.0).abs() < 1e-12);
        // Linear interpolation: mid-state is the arithmetic mean.
        let mid = ThresholdDevice::with_state(p.clone(), 0.5);
        let mean = 0.5 * (p.r_on.get() + p.r_off.get());
        assert!((mid.resistance().get() / mean - 1.0).abs() < 1e-12);
    }

    #[test]
    fn reversed_polarity_sets_under_negative_voltage() {
        let p = DeviceParams::table1_cim();
        let mut d = ThresholdDevice::new_hrs(p.clone()).with_polarity(Polarity::Reversed);
        d.apply(-p.write_voltage, p.write_time);
        assert!(d.is_lrs());
        // And positive voltage now resets.
        d.apply(p.write_voltage, p.write_time);
        assert!(d.is_hrs());
    }

    #[test]
    fn overdrive_speeds_up_switching() {
        let p = DeviceParams::table1_cim();
        let mut slow = ThresholdDevice::new_hrs(p.clone());
        let mut fast = ThresholdDevice::new_hrs(p.clone());
        let dt = p.write_time / 10.0;
        slow.apply(Voltage::from_volts(1.5), dt);
        fast.apply(Voltage::from_volts(3.0), dt);
        assert!(fast.state() > slow.state());
    }

    #[test]
    fn write_bit_round_trips() {
        let mut d = dev();
        d.write_bit(true);
        assert!(d.as_bit());
        d.write_bit(false);
        assert!(!d.as_bit());
    }

    #[test]
    #[should_panic(expected = "state must lie in [0, 1]")]
    fn rejects_out_of_range_initial_state() {
        let _ = ThresholdDevice::with_state(DeviceParams::table1_cim(), 1.5);
    }
}
