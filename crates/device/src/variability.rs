//! Device-to-device and cycle-to-cycle variability sampling.

use cim_units::Resistance;
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::DeviceParams;

/// Log-normal spread applied to device parameters.
///
/// ReRAM resistance levels vary log-normally across devices
/// (device-to-device, D2D) and across SET/RESET events of one device
/// (cycle-to-cycle, C2C). `Variability` samples perturbed
/// [`DeviceParams`] for array construction; sigma values are in natural-log
/// units (σ = 0.1 ≈ ±10% one-sigma spread).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Variability {
    /// Device-to-device σ on `r_on` and `r_off` (log-normal).
    pub sigma_resistance: f64,
    /// Device-to-device σ on the switching thresholds (log-normal).
    pub sigma_threshold: f64,
    /// Cycle-to-cycle σ on the switching time (log-normal).
    pub sigma_switching_time: f64,
}

impl Variability {
    /// No variability: every sampled device is nominal.
    pub const NONE: Self = Self {
        sigma_resistance: 0.0,
        sigma_threshold: 0.0,
        sigma_switching_time: 0.0,
    };

    /// A typical mature-process corner (≈10% resistance spread, 5%
    /// threshold spread, 15% switching-time jitter).
    pub fn typical() -> Self {
        Self {
            sigma_resistance: 0.10,
            sigma_threshold: 0.05,
            sigma_switching_time: 0.15,
        }
    }

    /// Samples one log-normally perturbed parameter set.
    ///
    /// Uses Box–Muller on the caller's `rng` so array construction is
    /// reproducible from a seed.
    pub fn sample<R: Rng + ?Sized>(&self, nominal: &DeviceParams, rng: &mut R) -> DeviceParams {
        let mut params = nominal.clone();
        params.r_on = Resistance::new(nominal.r_on.get() * lognormal(rng, self.sigma_resistance));
        params.r_off = Resistance::new(nominal.r_off.get() * lognormal(rng, self.sigma_resistance));
        params.v_set = nominal.v_set * lognormal(rng, self.sigma_threshold);
        params.v_reset = nominal.v_reset * lognormal(rng, self.sigma_threshold);
        params.write_time = nominal.write_time * lognormal(rng, self.sigma_switching_time);
        // Guard the invariants `validate` enforces: keep the window between
        // thresholds and write voltage open even at extreme samples.
        let vmax = params.v_set.max(params.v_reset);
        if params.write_voltage.get() <= vmax.get() * 1.2 {
            params.write_voltage = vmax * 1.5;
        }
        if params.r_off.get() <= params.r_on.get() * 2.0 {
            params.r_off = Resistance::new(params.r_on.get() * 2.0);
        }
        params
    }
}

impl Default for Variability {
    fn default() -> Self {
        Self::NONE
    }
}

/// Draws `exp(σ·N(0,1))` via Box–Muller.
fn lognormal<R: Rng + ?Sized>(rng: &mut R, sigma: f64) -> f64 {
    if sigma == 0.0 {
        return 1.0;
    }
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    let normal = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
    (sigma * normal).exp()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn none_reproduces_nominal() {
        let nominal = DeviceParams::table1_cim();
        let mut rng = StdRng::seed_from_u64(7);
        let sampled = Variability::NONE.sample(&nominal, &mut rng);
        assert_eq!(sampled, nominal);
    }

    #[test]
    fn sampling_is_reproducible_from_seed() {
        let nominal = DeviceParams::table1_cim();
        let v = Variability::typical();
        let a = v.sample(&nominal, &mut StdRng::seed_from_u64(42));
        let b = v.sample(&nominal, &mut StdRng::seed_from_u64(42));
        assert_eq!(a, b);
    }

    #[test]
    fn samples_always_validate() {
        let nominal = DeviceParams::table1_cim();
        let v = Variability {
            sigma_resistance: 0.5,
            sigma_threshold: 0.3,
            sigma_switching_time: 0.5,
        };
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1_000 {
            v.sample(&nominal, &mut rng).validate();
        }
    }

    #[test]
    fn spread_has_roughly_unit_median() {
        let nominal = DeviceParams::table1_cim();
        let v = Variability::typical();
        let mut rng = StdRng::seed_from_u64(3);
        let samples: Vec<f64> = (0..2_000)
            .map(|_| v.sample(&nominal, &mut rng).r_on / nominal.r_on)
            .collect();
        let mut sorted = samples.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let median = sorted[sorted.len() / 2];
        assert!((median - 1.0).abs() < 0.05, "median ratio {median}");
        // And there is actual spread.
        assert!(sorted.last().expect("nonempty") / sorted[0] > 1.2);
    }
}
