//! The Pickett tunnel-barrier model (Pickett et al., J. Appl. Phys. 2009)
//! — the physics-based TiO₂ model the paper cites for "switching dynamics
//! in titanium dioxide memristive devices" (its reference [71]).
//!
//! The state variable is the tunnel-barrier width `w`: Joule-heating-
//! driven drift widens it under positive current (OFF-switching) and
//! narrows it under negative current (ON-switching), with strongly
//! asymmetric, `sinh`-shaped current dependence:
//!
//! ```text
//! dw/dt = f_off · sinh(i/i_off) · exp[ −exp((w − a_off)/w_c − |i|/b) − w/w_c ]   (i > 0)
//! dw/dt = −f_on · sinh(|i|/i_on) · exp[ −exp((a_on − w)/w_c − |i|/b) − w/w_c ]   (i < 0)
//! ```
//!
//! The published constants are retained. The Simmons tunnelling I-V is
//! approximated by an exponential resistance map `R(w)` between the
//! measured ON/OFF levels — the standard simplification when the model is
//! used at array level. Compared with [`crate::ThresholdDevice`], Pickett
//! switching has no hard voltage threshold but an extremely steep current
//! dependence, which the tests contrast.

use cim_units::{Resistance, Time, Voltage};
use serde::{Deserialize, Serialize};

use crate::memristor::{Memristor, TwoTerminal};

/// Published constants of the Pickett model (TiO₂, HP Labs).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PickettParams {
    /// OFF-switching velocity prefactor (m/s).
    pub f_off: f64,
    /// OFF-switching current scale (A).
    pub i_off: f64,
    /// OFF asymptotic barrier width (m).
    pub a_off: f64,
    /// ON-switching velocity prefactor (m/s).
    pub f_on: f64,
    /// ON-switching current scale (A).
    pub i_on: f64,
    /// ON asymptotic barrier width (m).
    pub a_on: f64,
    /// Current roll-off scale (A).
    pub b: f64,
    /// Barrier-width scale (m).
    pub w_c: f64,
    /// Barrier width range `[w_min, w_max]` (m).
    pub w_min: f64,
    /// Upper barrier bound (m).
    pub w_max: f64,
    /// Resistance at `w_min` (fully ON).
    pub r_on: Resistance,
    /// Resistance at `w_max` (fully OFF).
    pub r_off: Resistance,
}

impl PickettParams {
    /// The constants published for the HP TiO₂ device.
    pub fn hp_tio2() -> Self {
        Self {
            f_off: 3.5e-6,
            i_off: 115e-6,
            a_off: 1.2e-9,
            f_on: 40e-6,
            i_on: 8.9e-6,
            a_on: 1.8e-9,
            b: 500e-6,
            w_c: 107e-12,
            w_min: 1.1e-9,
            w_max: 1.9e-9,
            r_on: Resistance::from_kilo_ohms(1.0),
            r_off: Resistance::from_kilo_ohms(200.0),
        }
    }

    /// Validates physical consistency.
    ///
    /// # Panics
    ///
    /// Panics if ranges are inverted or scales are non-positive.
    pub fn validate(&self) {
        assert!(self.w_min < self.w_max, "barrier range inverted");
        assert!(self.r_off > self.r_on, "resistance range inverted");
        assert!(
            self.f_off > 0.0 && self.f_on > 0.0 && self.i_off > 0.0 && self.i_on > 0.0,
            "velocity/current scales must be positive"
        );
        assert!(self.b > 0.0 && self.w_c > 0.0, "scales must be positive");
    }
}

/// The Pickett tunnel-barrier memristor.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PickettDevice {
    params: PickettParams,
    /// Barrier width in metres, clamped to `[w_min, w_max]`.
    w: f64,
}

impl PickettDevice {
    /// Creates a device at normalised state `x` (1 = ON/LRS).
    ///
    /// # Panics
    ///
    /// Panics if `params` is inconsistent or `x ∉ [0, 1]`.
    pub fn new(params: PickettParams, x: f64) -> Self {
        params.validate();
        assert!((0.0..=1.0).contains(&x), "state must lie in [0, 1]");
        let w = params.w_max - x * (params.w_max - params.w_min);
        Self { params, w }
    }

    /// The model constants.
    pub fn params(&self) -> &PickettParams {
        &self.params
    }

    /// Present barrier width in metres.
    pub fn barrier_width(&self) -> f64 {
        self.w
    }

    /// Barrier drift velocity (m/s) at current `i` (A).
    fn dw_dt(&self, i: f64) -> f64 {
        let p = &self.params;
        if i > 0.0 {
            let gate = (-((self.w - p.a_off) / p.w_c - i.abs() / p.b).exp() - self.w / p.w_c).exp();
            p.f_off * (i / p.i_off).sinh() * gate
        } else if i < 0.0 {
            let gate = (-((p.a_on - self.w) / p.w_c - i.abs() / p.b).exp() - self.w / p.w_c).exp();
            -p.f_on * (i.abs() / p.i_on).sinh() * gate
        } else {
            0.0
        }
    }
}

impl Memristor for PickettDevice {
    fn state(&self) -> f64 {
        let p = &self.params;
        (p.w_max - self.w) / (p.w_max - p.w_min)
    }

    fn set_state(&mut self, x: f64) {
        debug_assert!((0.0..=1.0).contains(&x), "state must lie in [0, 1]");
        let p = &self.params;
        self.w = p.w_max - x.clamp(0.0, 1.0) * (p.w_max - p.w_min);
    }

    fn is_lrs(&self) -> bool {
        self.state() >= 0.5
    }
}

impl TwoTerminal for PickettDevice {
    fn resistance(&self) -> Resistance {
        // Exponential map between the measured ON/OFF levels (tunnelling
        // resistance grows exponentially with barrier width).
        let p = &self.params;
        let frac = (self.w - p.w_min) / (p.w_max - p.w_min);
        let lambda = (p.r_off.get() / p.r_on.get()).ln();
        Resistance::new(p.r_on.get() * (lambda * frac).exp())
    }

    fn apply(&mut self, v: Voltage, dt: Time) {
        if dt.get() <= 0.0 || v.get() == 0.0 {
            return;
        }
        // Adaptive substepping: barrier motion per step ≤ 1% of range.
        let p_range = self.params.w_max - self.params.w_min;
        let mut remaining = dt.get();
        let mut guard = 0;
        while remaining > 0.0 && guard < 100_000 {
            guard += 1;
            let i = (v / self.resistance()).get();
            let velocity = self.dw_dt(i);
            if velocity == 0.0 {
                break;
            }
            let max_step = 0.01 * p_range / velocity.abs();
            let h = remaining.min(max_step);
            self.w = (self.w + velocity * h).clamp(self.params.w_min, self.params.w_max);
            remaining -= h;
            if (self.w <= self.params.w_min && velocity < 0.0)
                || (self.w >= self.params.w_max && velocity > 0.0)
            {
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn device(x: f64) -> PickettDevice {
        PickettDevice::new(PickettParams::hp_tio2(), x)
    }

    #[test]
    fn state_and_barrier_width_are_consistent() {
        let d = device(1.0);
        assert!((d.barrier_width() - 1.1e-9).abs() < 1e-15);
        assert!((d.state() - 1.0).abs() < 1e-12);
        let d = device(0.0);
        assert!((d.barrier_width() - 1.9e-9).abs() < 1e-15);
        assert!(d.is_hrs());
    }

    #[test]
    fn resistance_spans_published_levels() {
        let p = PickettParams::hp_tio2();
        let on = device(1.0);
        let off = device(0.0);
        assert!((on.resistance() / p.r_on - 1.0).abs() < 1e-9);
        assert!((off.resistance() / p.r_off - 1.0).abs() < 1e-9);
    }

    #[test]
    fn positive_current_switches_off() {
        // Positive current widens the barrier (RESET direction).
        let mut d = device(1.0);
        d.apply(Voltage::from_volts(1.2), Time::from_micro_seconds(100.0));
        assert!(d.state() < 1.0, "barrier should widen");
    }

    #[test]
    fn negative_current_switches_on() {
        let mut d = device(0.0);
        d.apply(Voltage::from_volts(-1.5), Time::from_micro_seconds(100.0));
        assert!(d.state() > 0.0, "barrier should narrow");
    }

    #[test]
    fn sinh_kinetics_are_superlinear_in_current() {
        // Doubling the current must much-more-than-double the speed —
        // the "strong non-linearity of the switching kinetics" the paper
        // demands of device models.
        let d = device(1.0);
        let i1 = 200e-6;
        let v1 = d.dw_dt(i1);
        let v2 = d.dw_dt(2.0 * i1);
        assert!(v2 > 4.0 * v1, "sinh superlinearity: {v1} vs {v2}");
    }

    #[test]
    fn switching_is_asymmetric() {
        // ON-switching (f_on = 40 µm/s) is intrinsically faster than
        // OFF-switching (f_off = 3.5 µm/s) at matched current magnitude.
        let on = device(0.5).dw_dt(-100e-6).abs();
        let off = device(0.5).dw_dt(100e-6).abs();
        assert!(on > off, "ON {on} should outpace OFF {off}");
    }

    #[test]
    fn state_remains_bounded_under_overdrive() {
        let mut d = device(0.5);
        d.apply(Voltage::from_volts(3.0), Time::from_milli_seconds(10.0));
        assert!((0.0..=1.0).contains(&d.state()));
        d.apply(Voltage::from_volts(-3.0), Time::from_milli_seconds(10.0));
        assert!((0.0..=1.0).contains(&d.state()));
    }

    #[test]
    fn low_currents_barely_move_the_barrier() {
        // No hard threshold, but the sinh gate makes µA-scale reads
        // effectively inert over realistic read pulses.
        let mut d = device(1.0);
        let before = d.barrier_width();
        for _ in 0..1_000 {
            d.apply(
                Voltage::from_milli_volts(50.0),
                Time::from_nano_seconds(10.0),
            );
        }
        let moved = (d.barrier_width() - before).abs();
        assert!(
            moved < 0.001 * (1.9e-9 - 1.1e-9),
            "read disturb {moved} too large"
        );
    }

    #[test]
    #[should_panic(expected = "barrier range inverted")]
    fn rejects_inverted_ranges() {
        let params = PickettParams {
            w_min: 2e-9,
            ..PickettParams::hp_tio2()
        };
        let _ = PickettDevice::new(params, 0.5);
    }
}
