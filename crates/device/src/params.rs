//! Technology parameter sets for bipolar resistive switches.

use cim_units::{Area, Energy, Resistance, Time, Voltage};
use serde::{Deserialize, Serialize};

/// Electrical and technology parameters of a bipolar resistive switch.
///
/// The presets encode the numbers the DATE'15 paper quotes in Table 1 and
/// Section IV for the technologies it surveys. All fields are public — this
/// is a passive parameter record in the C-struct spirit, and ablation
/// benches sweep individual fields.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceParams {
    /// Low-resistive-state (fully SET) resistance.
    pub r_on: Resistance,
    /// High-resistive-state (fully RESET) resistance.
    pub r_off: Resistance,
    /// SET threshold: no switching towards LRS below this voltage.
    pub v_set: Voltage,
    /// RESET threshold magnitude: no switching towards HRS above `-v_reset`.
    pub v_reset: Voltage,
    /// Nominal programming voltage (applied full-select during writes).
    pub write_voltage: Voltage,
    /// Full HRS↔LRS switching time at `write_voltage` (Table 1: 200 ps).
    pub write_time: Time,
    /// Dynamic energy of one write operation (Table 1: 1 fJ).
    pub write_energy: Energy,
    /// Cell footprint (Table 1: 1×10⁻⁴ µm² at a 5 nm feature size).
    pub cell_area: Area,
    /// Exponent of the VTEAM-style switching-kinetics power law; larger
    /// values give sharper thresholds (stronger half-select immunity).
    pub kinetics_exponent: f64,
    /// Filamentary SET is regenerative: once the filament is half formed
    /// the current runaway completes it even as the terminal voltage
    /// collapses. When set, a SET transition that crosses the mid-state
    /// within a pulse completes to the full LRS. Stateful (IMPLY) logic
    /// relies on this — a smooth self-limiting SET stalls at the load-line
    /// equilibrium and the output cannot condition downstream gates.
    pub abrupt_set: bool,
    /// Write endurance in SET/RESET cycles (10¹² for TaOx VCM, 10¹⁰ for
    /// Ag-GeSe ECM per Section IV).
    pub endurance_cycles: u64,
    /// Extrapolated retention (Section IV: > 10 years).
    pub retention: Time,
}

const YEAR: f64 = 365.25 * 24.0 * 3600.0;

impl DeviceParams {
    /// The CIM-architecture device of Table 1: 5 nm feature size, 200 ps
    /// write, 1 fJ per write, 10⁻⁴ µm² per cell.
    pub fn table1_cim() -> Self {
        Self {
            r_on: Resistance::from_kilo_ohms(10.0),
            r_off: Resistance::from_mega_ohms(1.0),
            v_set: Voltage::from_volts(1.0),
            v_reset: Voltage::from_volts(1.0),
            write_voltage: Voltage::from_volts(2.0),
            write_time: Time::from_pico_seconds(200.0),
            write_energy: Energy::from_femto_joules(1.0),
            cell_area: Area::from_square_micro_meters(1e-4),
            kinetics_exponent: 3.0,
            abrupt_set: true,
            endurance_cycles: 1_000_000_000_000,
            retention: Time::from_seconds(10.0 * YEAR),
        }
    }

    /// TaOx-based VCM cell (Section IV): < 200 ps switching, > 10¹² cycles.
    pub fn vcm_taox() -> Self {
        Self {
            r_on: Resistance::from_kilo_ohms(10.0),
            r_off: Resistance::from_mega_ohms(1.0),
            endurance_cycles: 1_000_000_000_000,
            ..Self::table1_cim()
        }
    }

    /// HfOx-based VCM cell (Section IV: F = 10 nm demonstrated).
    pub fn vcm_hfox() -> Self {
        Self {
            r_on: Resistance::from_kilo_ohms(20.0),
            r_off: Resistance::from_mega_ohms(2.0),
            write_time: Time::from_nano_seconds(1.0),
            cell_area: Area::from_square_nano_meters(10.0 * 10.0 * 4.0),
            ..Self::table1_cim()
        }
    }

    /// Ag-chalcogenide ECM cell (Section IV): < 10 ns switching, 10¹⁰
    /// cycles, larger OFF/ON ratio.
    pub fn ecm_ag() -> Self {
        Self {
            r_on: Resistance::from_kilo_ohms(5.0),
            r_off: Resistance::from_mega_ohms(5.0),
            v_set: Voltage::from_volts(0.6),
            v_reset: Voltage::from_volts(0.4),
            write_voltage: Voltage::from_volts(1.5),
            write_time: Time::from_nano_seconds(10.0),
            endurance_cycles: 10_000_000_000,
            ..Self::table1_cim()
        }
    }

    /// OFF/ON resistance ratio (Section IV praises the "high OFF/ON
    /// resistance ratio" of ReRAM).
    pub fn off_on_ratio(&self) -> f64 {
        self.r_off / self.r_on
    }

    /// Rate constant `k` of the VTEAM-style power law
    /// `dx/dt = k·((|v| − v_th)/v_th)^α`, calibrated so that a full switch
    /// at `write_voltage` takes exactly `write_time`.
    pub(crate) fn rate_constant(&self, threshold: Voltage) -> f64 {
        let overdrive = (self.write_voltage.get() - threshold.get()) / threshold.get();
        debug_assert!(
            overdrive > 0.0,
            "write voltage must exceed the switching threshold"
        );
        1.0 / (self.write_time.get() * overdrive.powf(self.kinetics_exponent))
    }

    /// Instantaneous switching rate (fraction of full transition per
    /// second) at oriented voltage `v` against `threshold`.
    pub(crate) fn switching_rate(&self, v: Voltage, threshold: Voltage) -> f64 {
        let over = (v.get().abs() - threshold.get()) / threshold.get();
        if over <= 0.0 {
            0.0
        } else {
            self.rate_constant(threshold) * over.powf(self.kinetics_exponent)
        }
    }

    /// Validates internal consistency; called by device constructors.
    ///
    /// # Panics
    ///
    /// Panics if resistances are non-positive, `r_off ≤ r_on`, or the write
    /// voltage does not exceed both thresholds.
    pub fn validate(&self) {
        assert!(self.r_on.get() > 0.0, "r_on must be positive");
        assert!(self.r_off > self.r_on, "r_off must exceed r_on");
        assert!(
            self.write_voltage > self.v_set && self.write_voltage > self.v_reset,
            "write voltage must exceed both switching thresholds"
        );
        assert!(self.write_time.get() > 0.0, "write time must be positive");
        assert!(
            self.kinetics_exponent >= 1.0,
            "kinetics exponent must be at least 1"
        );
    }
}

impl Default for DeviceParams {
    fn default() -> Self {
        Self::table1_cim()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_self_consistent() {
        for params in [
            DeviceParams::table1_cim(),
            DeviceParams::vcm_taox(),
            DeviceParams::vcm_hfox(),
            DeviceParams::ecm_ag(),
        ] {
            params.validate();
            assert!(params.off_on_ratio() >= 50.0);
        }
    }

    #[test]
    fn rate_constant_calibrated_to_write_time() {
        let p = DeviceParams::table1_cim();
        // At the nominal write voltage the switching rate must complete a
        // full transition in exactly `write_time`.
        let rate = p.switching_rate(p.write_voltage, p.v_set);
        let full_switch = 1.0 / rate;
        assert!((full_switch - p.write_time.get()).abs() < 1e-18);
    }

    #[test]
    fn no_switching_below_threshold() {
        let p = DeviceParams::table1_cim();
        assert_eq!(p.switching_rate(Voltage::from_volts(0.99), p.v_set), 0.0);
        assert_eq!(p.switching_rate(Voltage::from_volts(-0.5), p.v_reset), 0.0);
        assert_eq!(p.switching_rate(Voltage::ZERO, p.v_set), 0.0);
    }

    #[test]
    fn kinetics_are_strongly_nonlinear() {
        let p = DeviceParams::table1_cim();
        let full = p.switching_rate(p.write_voltage, p.v_set);
        let half_over = p.switching_rate(Voltage::from_volts(1.5), p.v_set);
        // Halving the overdrive must slow switching by 2^alpha = 8.
        assert!((full / half_over - 8.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "r_off must exceed r_on")]
    fn validate_rejects_inverted_resistances() {
        let params = DeviceParams {
            r_off: Resistance::from_ohms(1.0),
            ..DeviceParams::table1_cim()
        };
        params.validate();
    }

    #[test]
    fn table1_numbers_match_paper() {
        let p = DeviceParams::table1_cim();
        assert_eq!(p.write_time.as_pico_seconds(), 200.0);
        assert_eq!(p.write_energy.as_femto_joules(), 1.0);
        assert!((p.cell_area.as_square_micro_meters() - 1e-4).abs() < 1e-19);
        assert!(p.retention.as_seconds() > 3.0e8); // > 10 years
    }
}
