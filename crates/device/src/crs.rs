//! Complementary resistive switch (CRS) — Linn et al., Nature Materials 2010.
//!
//! A CRS cell stacks two bipolar switches **anti-serially**: element A SETs
//! under positive cell voltage, element B under negative. The logical
//! states `'0'` (A HRS / B LRS) and `'1'` (A LRS / B HRS) both present a
//! high resistance at low voltage — which is exactly why a passive CRS
//! crossbar has no sneak paths (paper Fig. 3/4): an unselected cell passes
//! almost no current regardless of the bit it stores.
//!
//! The four cell-level thresholds of the paper's Fig. 4 *emerge* here from
//! the voltage divider across the two elements rather than being
//! hand-coded: in state `'0'` nearly all of a positive cell voltage drops
//! over the high-resistive A, so A SETs once the cell voltage exceeds
//! roughly `v_set` (= Vth1) and the cell snaps to ON; in ON the drop
//! divides evenly, so B only RESETs (completing the transition to `'1'`)
//! once the cell voltage exceeds roughly `2·v_reset` (= Vth2). Negative
//! voltages mirror this as Vth3/Vth4.

use cim_units::{Current, Resistance, Time, Voltage};
use serde::{Deserialize, Serialize};

use crate::memristor::{Memristor, Polarity, TwoTerminal};
use crate::{DeviceParams, ThresholdDevice};

/// Logical state of a CRS cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CrsState {
    /// A HRS / B LRS — stores logic 0.
    Zero,
    /// A LRS / B HRS — stores logic 1.
    One,
    /// Both elements LRS — transient state entered when reading a `'0'`;
    /// the only low-resistance state (current spike = read signal).
    On,
    /// Both elements HRS — pristine/unformed cell.
    Off,
}

impl CrsState {
    /// The stored bit, if the cell is in a valid storage state.
    pub fn bit(self) -> Option<bool> {
        match self {
            CrsState::Zero => Some(false),
            CrsState::One => Some(true),
            CrsState::On | CrsState::Off => None,
        }
    }
}

impl std::fmt::Display for CrsState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            CrsState::Zero => "'0'",
            CrsState::One => "'1'",
            CrsState::On => "ON",
            CrsState::Off => "OFF",
        };
        f.write_str(s)
    }
}

/// Result of an electrical CRS read pulse.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CrsReadOutcome {
    /// The bit that was stored before the read.
    pub bit: bool,
    /// Sense current at the end of the read pulse.
    pub current: Current,
    /// True if the read destroyed the stored value (`'0'` → ON) and a
    /// write-back is required — the behaviour the paper calls out:
    /// "reading ON state is a destructive operation".
    pub destructive: bool,
}

/// A complementary resistive switch: two anti-serial [`ThresholdDevice`]s.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Crs {
    a: ThresholdDevice,
    b: ThresholdDevice,
    params: DeviceParams,
}

impl Crs {
    /// Integration substeps per read/write pulse. The divider ratio changes
    /// as the elements switch, so pulses are integrated piecewise.
    const PULSE_STEPS: u32 = 64;

    /// Pulse-length multiplier relative to the single-device write time:
    /// the divider leaves each element with reduced overdrive, so CRS
    /// operations take a ~10× longer pulse than raw device writes.
    const PULSE_SCALE: f64 = 10.0;

    /// Creates a pristine (OFF, both elements HRS) cell.
    ///
    /// # Panics
    ///
    /// Panics if `params` fails [`DeviceParams::validate`].
    pub fn pristine(params: DeviceParams) -> Self {
        params.validate();
        Self {
            a: ThresholdDevice::new_hrs(params.clone()),
            b: ThresholdDevice::new_hrs(params.clone()).with_polarity(Polarity::Reversed),
            params,
        }
    }

    /// Creates a cell storing logic 0 (A HRS / B LRS).
    pub fn new_zero(params: DeviceParams) -> Self {
        let mut cell = Self::pristine(params);
        cell.a.set_state(0.0);
        cell.b.set_state(1.0);
        cell
    }

    /// Creates a cell storing logic 1 (A LRS / B HRS).
    pub fn new_one(params: DeviceParams) -> Self {
        let mut cell = Self::pristine(params);
        cell.a.set_state(1.0);
        cell.b.set_state(0.0);
        cell
    }

    /// The technology parameters of the constituent elements.
    pub fn params(&self) -> &DeviceParams {
        &self.params
    }

    /// Classifies the present logical state.
    pub fn state(&self) -> CrsState {
        match (self.a.is_lrs(), self.b.is_lrs()) {
            (false, true) => CrsState::Zero,
            (true, false) => CrsState::One,
            (true, true) => CrsState::On,
            (false, false) => CrsState::Off,
        }
    }

    /// Internal states `(x_a, x_b)` of the two elements.
    pub fn element_states(&self) -> (f64, f64) {
        (self.a.state(), self.b.state())
    }

    /// Cell voltage used for writes; must exceed Vth2 ≈ 2·v_reset
    /// (paper: "writing '1' requires V > Vth,2").
    pub fn write_voltage(&self) -> Voltage {
        self.params.write_voltage * 1.5
    }

    /// Cell voltage used for reads; sits between Vth1 and Vth2 so a stored
    /// `'0'` snaps to ON (current spike) while a `'1'` stays put.
    pub fn read_voltage(&self) -> Voltage {
        self.params.write_voltage * 0.75
    }

    /// Duration of a read or write pulse.
    pub fn pulse_time(&self) -> Time {
        self.params.write_time * Self::PULSE_SCALE
    }

    /// Sense-current threshold separating ON (LRS/LRS) from the storage
    /// states at the read voltage: the geometric mean of the two extremes.
    pub fn sense_threshold(&self) -> Current {
        let i_on = self.read_voltage() / (self.params.r_on * 2.0);
        let i_off = self.read_voltage() / (self.params.r_on + self.params.r_off);
        Current::new((i_on.get() * i_off.get()).sqrt())
    }

    /// Electrically writes a bit: a positive over-Vth2 pulse for `1`, a
    /// negative under-Vth4 pulse for `0`.
    pub fn write(&mut self, bit: bool) {
        let v = if bit {
            self.write_voltage()
        } else {
            -self.write_voltage()
        };
        self.apply(v, self.pulse_time());
        debug_assert_eq!(self.state().bit(), Some(bit), "CRS write failed");
    }

    /// Ideal (non-electrical) programming, for array initialisation.
    pub fn write_bit_ideal(&mut self, bit: bool) {
        let (xa, xb) = if bit { (1.0, 0.0) } else { (0.0, 1.0) };
        self.a.set_state(xa);
        self.b.set_state(xb);
    }

    /// Performs a destructive-read pulse and classifies the result.
    ///
    /// A stored `'0'` transitions to ON under the read voltage and produces
    /// a current spike; a stored `'1'` remains high-resistive. The caller
    /// is responsible for the write-back when `destructive` is set (or use
    /// [`Crs::read_restore`]).
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the cell is not in a valid storage state.
    pub fn read(&mut self) -> CrsReadOutcome {
        debug_assert!(
            matches!(self.state(), CrsState::Zero | CrsState::One),
            "reading a CRS cell that holds no bit (state {})",
            self.state()
        );
        self.apply(self.read_voltage(), self.pulse_time());
        let current = self.current_at(self.read_voltage());
        let went_on = current.get() > self.sense_threshold().get();
        CrsReadOutcome {
            // ON after a read pulse means the cell *was* '0'.
            bit: !went_on,
            current,
            destructive: went_on,
        }
    }

    /// Reads the stored bit and restores it if the read was destructive.
    pub fn read_restore(&mut self) -> bool {
        let outcome = self.read();
        if outcome.destructive {
            self.write(outcome.bit);
        }
        outcome.bit
    }
}

impl TwoTerminal for Crs {
    fn resistance(&self) -> Resistance {
        TwoTerminal::resistance(&self.a) + TwoTerminal::resistance(&self.b)
    }

    fn apply(&mut self, v: Voltage, dt: Time) {
        if dt.get() <= 0.0 {
            return;
        }
        let h = dt / f64::from(Self::PULSE_STEPS);
        for _ in 0..Self::PULSE_STEPS {
            let ra = TwoTerminal::resistance(&self.a).get();
            let rb = TwoTerminal::resistance(&self.b).get();
            let va = v * (ra / (ra + rb));
            let vb = v * (rb / (ra + rb));
            TwoTerminal::apply(&mut self.a, va, h);
            TwoTerminal::apply(&mut self.b, vb, h);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn zero() -> Crs {
        Crs::new_zero(DeviceParams::table1_cim())
    }

    fn one() -> Crs {
        Crs::new_one(DeviceParams::table1_cim())
    }

    #[test]
    fn storage_states_classify_and_carry_bits() {
        assert_eq!(zero().state(), CrsState::Zero);
        assert_eq!(one().state(), CrsState::One);
        assert_eq!(zero().state().bit(), Some(false));
        assert_eq!(one().state().bit(), Some(true));
        assert_eq!(CrsState::On.bit(), None);
        assert_eq!(CrsState::Off.bit(), None);
    }

    #[test]
    fn both_storage_states_are_high_resistive() {
        // The sneak-path-immunity property: '0' and '1' are
        // indistinguishable (both ~HRS) at low voltage.
        let p = DeviceParams::table1_cim();
        let r0 = zero().resistance();
        let r1 = one().resistance();
        assert!(r0.get() > p.r_off.get());
        assert!(r1.get() > p.r_off.get());
        assert!((r0 / r1 - 1.0).abs() < 1e-9);
    }

    #[test]
    fn positive_write_pulse_stores_one() {
        let mut cell = zero();
        cell.write(true);
        assert_eq!(cell.state(), CrsState::One);
    }

    #[test]
    fn negative_write_pulse_stores_zero() {
        let mut cell = one();
        cell.write(false);
        assert_eq!(cell.state(), CrsState::Zero);
    }

    #[test]
    fn write_is_idempotent() {
        let mut cell = zero();
        cell.write(true);
        cell.write(true);
        assert_eq!(cell.state(), CrsState::One);
        cell.write(false);
        cell.write(false);
        assert_eq!(cell.state(), CrsState::Zero);
    }

    #[test]
    fn reading_zero_is_destructive_and_spikes_current() {
        let mut cell = zero();
        let outcome = cell.read();
        assert!(!outcome.bit);
        assert!(outcome.destructive);
        assert_eq!(cell.state(), CrsState::On);
        assert!(outcome.current.get() > cell.sense_threshold().get());
    }

    #[test]
    fn reading_one_is_non_destructive() {
        let mut cell = one();
        let outcome = cell.read();
        assert!(outcome.bit);
        assert!(!outcome.destructive);
        assert_eq!(cell.state(), CrsState::One);
        assert!(outcome.current.get() < cell.sense_threshold().get());
    }

    #[test]
    fn read_restore_round_trips_both_bits() {
        for bit in [false, true] {
            let mut cell = zero();
            cell.write_bit_ideal(bit);
            assert_eq!(cell.read_restore(), bit);
            assert_eq!(cell.state().bit(), Some(bit));
            // Read again: value survives.
            assert_eq!(cell.read_restore(), bit);
        }
    }

    #[test]
    fn pristine_cell_is_off_and_undisturbed_by_reads() {
        let mut cell = Crs::pristine(DeviceParams::table1_cim());
        assert_eq!(cell.state(), CrsState::Off);
        // A read-level voltage halves across two HRS elements — below
        // threshold, so the pristine cell stays OFF.
        let v = cell.read_voltage();
        let t = cell.pulse_time();
        cell.apply(v, t);
        assert_eq!(cell.state(), CrsState::Off);
    }

    #[test]
    fn low_voltage_never_disturbs_storage() {
        for bit in [false, true] {
            let mut cell = zero();
            cell.write_bit_ideal(bit);
            let before = cell.element_states();
            // Half the read voltage (a V/2-scheme half-select) for a long
            // time must leave the cell untouched.
            let v = cell.read_voltage() / 2.0;
            for _ in 0..100 {
                cell.apply(v, cell.pulse_time());
                cell.apply(-v, cell.pulse_time());
            }
            assert_eq!(cell.element_states(), before);
        }
    }

    #[test]
    fn on_state_current_exceeds_storage_current_by_margin() {
        let mut on = zero();
        on.apply(on.read_voltage(), on.pulse_time()); // '0' -> ON
        assert_eq!(on.state(), CrsState::On);
        let stored = one();
        let i_on = on.current_at(on.read_voltage());
        let i_stored = stored.current_at(stored.read_voltage());
        assert!(
            i_on.get() / i_stored.get() > 10.0,
            "ON/stored read margin too small: {i_on} vs {i_stored}"
        );
    }

    #[test]
    fn display_names_match_paper() {
        assert_eq!(CrsState::Zero.to_string(), "'0'");
        assert_eq!(CrsState::On.to_string(), "ON");
    }
}
