//! Device-level error type.

use std::error::Error;
use std::fmt;

/// Errors surfaced by device wrappers that track physical limits.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum DeviceError {
    /// The device has consumed its write endurance budget and no longer
    /// switches reliably.
    EnduranceExhausted {
        /// Cycles performed when the limit was hit.
        cycles: u64,
        /// The technology's rated endurance.
        rated: u64,
    },
    /// A stored state decayed past the retention limit before being
    /// refreshed.
    RetentionViolated,
}

impl fmt::Display for DeviceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeviceError::EnduranceExhausted { cycles, rated } => write!(
                f,
                "device endurance exhausted after {cycles} cycles (rated {rated})"
            ),
            DeviceError::RetentionViolated => {
                write!(f, "stored state exceeded the retention window")
            }
        }
    }
}

impl Error for DeviceError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_informative() {
        let e = DeviceError::EnduranceExhausted {
            cycles: 10,
            rated: 10,
        };
        let msg = e.to_string();
        assert!(msg.contains("10 cycles"));
        assert!(msg.starts_with("device endurance"));
        assert!(!DeviceError::RetentionViolated.to_string().is_empty());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<DeviceError>();
    }
}
