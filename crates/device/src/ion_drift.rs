//! The Strukov/HP linear ion-drift model with window functions.
//!
//! Kept alongside [`crate::ThresholdDevice`] for model comparison: the
//! paper (Section IV.A) notes that "simple memristor models fail to predict
//! the correct device behaviour", and the ablation bench `device.rs` makes
//! that concrete by contrasting drift dynamics under different window
//! functions with the threshold model's sharp conditional switching.

use cim_units::{Resistance, Time, Voltage};
use serde::{Deserialize, Serialize};

use crate::memristor::{clamp_state, substeps, Memristor, TwoTerminal};

/// Boundary window function `f(x)` multiplying the drift velocity.
///
/// Window functions model the non-linear dopant drift near the film
/// boundaries; without one (`None`), the state can pin at the boundaries
/// and the model overestimates switching speed.
#[derive(Debug, Default, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum WindowFunction {
    /// No window: `f(x) = 1` (the original Strukov formulation).
    #[default]
    None,
    /// Joglekar: `f(x) = 1 − (2x − 1)^{2p}`. Symmetric, zero at both
    /// boundaries (which makes them sticky).
    Joglekar {
        /// Steepness parameter; higher keeps `f ≈ 1` longer mid-range.
        p: u32,
    },
    /// Biolek: `f(x, i) = 1 − (x − step(−i))^{2p}`. Direction-dependent, so
    /// the state can always leave a boundary.
    Biolek {
        /// Steepness parameter.
        p: u32,
    },
    /// Prodromakis: `f(x) = j·(1 − ((x − 0.5)² + 0.75)^p)`.
    Prodromakis {
        /// Steepness parameter.
        p: u32,
        /// Amplitude scale `j` (usually ≤ 1).
        j: f64,
    },
}

impl WindowFunction {
    /// Evaluates the window at state `x` with current sign `i_sign`.
    pub fn eval(self, x: f64, i_sign: f64) -> f64 {
        match self {
            WindowFunction::None => 1.0,
            WindowFunction::Joglekar { p } => 1.0 - (2.0 * x - 1.0).powi(2 * p as i32),
            WindowFunction::Biolek { p } => {
                let step = if i_sign >= 0.0 { 0.0 } else { 1.0 };
                1.0 - (x - step).powi(2 * p as i32)
            }
            WindowFunction::Prodromakis { p, j } => {
                j * (1.0 - ((x - 0.5).powi(2) + 0.75).powi(p as i32))
            }
        }
    }
}

/// Parameters of the linear ion-drift model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IonDriftParams {
    /// Fully-doped (LRS) resistance.
    pub r_on: Resistance,
    /// Fully-undoped (HRS) resistance.
    pub r_off: Resistance,
    /// Dopant mobility `μ_v` in m²·s⁻¹·V⁻¹ (HP TiO₂: ~1e-14).
    pub mobility: f64,
    /// Film thickness `D` in metres (HP TiO₂: ~10 nm).
    pub thickness: f64,
    /// Boundary window function.
    pub window: WindowFunction,
}

impl IonDriftParams {
    /// The HP Labs TiO₂ device of Strukov et al. (2008).
    pub fn hp_tio2() -> Self {
        Self {
            r_on: Resistance::from_ohms(100.0),
            r_off: Resistance::from_kilo_ohms(16.0),
            mobility: 1e-14,
            thickness: 10e-9,
            window: WindowFunction::Joglekar { p: 2 },
        }
    }
}

/// The Strukov linear ion-drift memristor.
///
/// State `x` is the normalised doped-region width `w/D`; the device is a
/// series combination `R(x) = x·R_on + (1 − x)·R_off` and the state drifts
/// with the instantaneous current:
///
/// ```text
/// dx/dt = (μ_v · R_on / D²) · i(t) · f(x)
/// ```
///
/// Unlike [`crate::ThresholdDevice`] there is **no threshold**: any voltage
/// moves the state, which is why the paper considers such models inadequate
/// for predicting array behaviour (reads disturb, half-select fails).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LinearIonDrift {
    params: IonDriftParams,
    x: f64,
}

impl LinearIonDrift {
    /// Creates a device at the given initial state.
    ///
    /// # Panics
    ///
    /// Panics if `x ∉ [0, 1]`, resistances are inverted, or `D ≤ 0`.
    pub fn new(params: IonDriftParams, x: f64) -> Self {
        assert!((0.0..=1.0).contains(&x), "state must lie in [0, 1]");
        assert!(params.r_off > params.r_on, "r_off must exceed r_on");
        assert!(params.thickness > 0.0, "thickness must be positive");
        Self { params, x }
    }

    /// The model parameters.
    pub fn params(&self) -> &IonDriftParams {
        &self.params
    }

    fn drift_coefficient(&self) -> f64 {
        self.params.mobility * self.params.r_on.get() / self.params.thickness.powi(2)
    }
}

impl Memristor for LinearIonDrift {
    fn state(&self) -> f64 {
        self.x
    }

    fn set_state(&mut self, x: f64) {
        debug_assert!((0.0..=1.0).contains(&x), "state must lie in [0, 1]");
        self.x = clamp_state(x);
    }
}

impl TwoTerminal for LinearIonDrift {
    fn resistance(&self) -> Resistance {
        let p = &self.params;
        Resistance::new(self.x * p.r_on.get() + (1.0 - self.x) * p.r_off.get())
    }

    fn apply(&mut self, v: Voltage, dt: Time) {
        if dt.get() <= 0.0 || v.get() == 0.0 {
            return;
        }
        // Characteristic time: full-range drift at the initial current.
        let i0 = (v / self.resistance()).get();
        let k = self.drift_coefficient();
        let rate0 = (k * i0).abs().max(1e-30);
        let n = substeps(dt, Time::new(1.0 / rate0));
        let h = dt.get() / f64::from(n);
        for _ in 0..n {
            let i = (v / self.resistance()).get();
            let f = self.params.window.eval(self.x, i.signum());
            self.x = clamp_state(self.x + k * i * f * h);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cim_units::Voltage;

    fn dev(window: WindowFunction) -> LinearIonDrift {
        let params = IonDriftParams {
            window,
            ..IonDriftParams::hp_tio2()
        };
        LinearIonDrift::new(params, 0.1)
    }

    #[test]
    fn positive_voltage_drives_towards_lrs() {
        let mut d = dev(WindowFunction::None);
        let r0 = d.resistance();
        d.apply(Voltage::from_volts(1.0), Time::from_micro_seconds(1.0));
        assert!(d.state() > 0.1);
        assert!(d.resistance() < r0);
    }

    #[test]
    fn negative_voltage_drives_towards_hrs() {
        let mut d = dev(WindowFunction::None);
        d.set_state(0.9);
        d.apply(Voltage::from_volts(-1.0), Time::from_micro_seconds(1.0));
        assert!(d.state() < 0.9);
    }

    #[test]
    fn no_threshold_means_any_voltage_disturbs() {
        // The key inadequacy vs ThresholdDevice: small read voltages move
        // the state.
        let mut d = dev(WindowFunction::None);
        let before = d.state();
        d.apply(
            Voltage::from_milli_volts(100.0),
            Time::from_micro_seconds(10.0),
        );
        assert!(d.state() > before);
    }

    #[test]
    fn state_remains_bounded_under_overdrive() {
        let mut d = dev(WindowFunction::None);
        d.apply(Voltage::from_volts(5.0), Time::from_milli_seconds(1.0));
        assert!(d.state() <= 1.0);
        d.apply(Voltage::from_volts(-5.0), Time::from_milli_seconds(1.0));
        assert!(d.state() >= 0.0);
    }

    #[test]
    fn joglekar_window_is_zero_at_boundaries() {
        let w = WindowFunction::Joglekar { p: 2 };
        assert!(w.eval(0.0, 1.0).abs() < 1e-12);
        assert!(w.eval(1.0, 1.0).abs() < 1e-12);
        assert!((w.eval(0.5, 1.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn biolek_window_unsticks_boundaries() {
        let w = WindowFunction::Biolek { p: 2 };
        // At x = 1 with positive current the window is 0 (can't overgrow)…
        assert!(w.eval(1.0, 1.0).abs() < 1e-12);
        // …but with negative current it is 1 (free to shrink).
        assert!((w.eval(1.0, -1.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn prodromakis_window_scales_with_j() {
        let w1 = WindowFunction::Prodromakis { p: 2, j: 1.0 };
        let w2 = WindowFunction::Prodromakis { p: 2, j: 0.5 };
        assert!((w1.eval(0.5, 1.0) - 2.0 * w2.eval(0.5, 1.0)).abs() < 1e-12);
    }

    #[test]
    fn joglekar_slows_switching_near_boundary() {
        let mut plain = dev(WindowFunction::None);
        let mut windowed = dev(WindowFunction::Joglekar { p: 2 });
        plain.set_state(0.95);
        windowed.set_state(0.95);
        let v = Voltage::from_volts(1.0);
        let t = Time::from_nano_seconds(100.0);
        plain.apply(v, t);
        windowed.apply(v, t);
        assert!(windowed.state() <= plain.state());
    }

    #[test]
    fn resistance_is_linear_in_state() {
        let d = dev(WindowFunction::None);
        let p = d.params().clone();
        let mut mid = d.clone();
        mid.set_state(0.5);
        let expect = 0.5 * (p.r_on.get() + p.r_off.get());
        assert!((mid.resistance().get() - expect).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "r_off must exceed r_on")]
    fn rejects_inverted_resistances() {
        let params = IonDriftParams {
            r_on: Resistance::from_kilo_ohms(100.0),
            ..IonDriftParams::hp_tio2()
        };
        let _ = LinearIonDrift::new(params, 0.5);
    }
}
