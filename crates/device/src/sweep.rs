//! Quasi-static I-V sweep harness (regenerates the paper's Fig. 4).

use cim_units::{Current, Time, Voltage};
use serde::{Deserialize, Serialize};

use crate::memristor::TwoTerminal;

/// One sample of a quasi-static I-V trace.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IvPoint {
    /// Applied cell voltage.
    pub v: Voltage,
    /// Measured current at that voltage.
    pub i: Current,
}

/// A triangular quasi-static voltage sweep `0 → +v_max → −v_max → 0`.
///
/// This is the standard characterisation waveform behind hysteresis plots
/// like the paper's Fig. 4: the voltage ramps slowly enough that the device
/// state tracks it, and the current is sampled at each step.
///
/// ```
/// use cim_device::{Crs, DeviceParams, IvSweep};
/// use cim_units::{Time, Voltage};
///
/// let mut cell = Crs::new_zero(DeviceParams::table1_cim());
/// let sweep = IvSweep::new(Voltage::from_volts(3.5), 200, Time::from_nano_seconds(1.0));
/// let trace = sweep.run(&mut cell);
/// assert_eq!(trace.len(), 4 * 200);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IvSweep {
    /// Peak sweep amplitude (both polarities).
    pub v_max: Voltage,
    /// Samples per quarter-ramp (total points = 4 × this).
    pub points_per_ramp: usize,
    /// Dwell time at each voltage step (sets the sweep rate).
    pub dwell: Time,
}

impl IvSweep {
    /// Creates a sweep description.
    ///
    /// # Panics
    ///
    /// Panics if `points_per_ramp` is zero or amplitudes/durations are not
    /// positive.
    pub fn new(v_max: Voltage, points_per_ramp: usize, dwell: Time) -> Self {
        assert!(points_per_ramp > 0, "sweep needs at least one point");
        assert!(v_max.get() > 0.0, "sweep amplitude must be positive");
        assert!(dwell.get() > 0.0, "dwell time must be positive");
        Self {
            v_max,
            points_per_ramp,
            dwell,
        }
    }

    /// The voltage waveform: `0 → +v_max → 0 → −v_max → 0`.
    pub fn waveform(&self) -> impl Iterator<Item = Voltage> + '_ {
        let n = self.points_per_ramp as f64;
        let up = (1..=self.points_per_ramp).map(move |k| self.v_max * (k as f64 / n));
        let down = (1..=self.points_per_ramp).map(move |k| self.v_max * (1.0 - k as f64 / n));
        let neg_down = (1..=self.points_per_ramp).map(move |k| -self.v_max * (k as f64 / n));
        let neg_up = (1..=self.points_per_ramp).map(move |k| -self.v_max * (1.0 - k as f64 / n));
        up.chain(down).chain(neg_down).chain(neg_up)
    }

    /// Runs the sweep against a device, evolving its state and sampling
    /// the current at every step.
    pub fn run<D: TwoTerminal>(&self, device: &mut D) -> Vec<IvPoint> {
        self.waveform()
            .map(|v| {
                device.apply(v, self.dwell);
                IvPoint {
                    v,
                    i: device.current_at(v),
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Crs, DeviceParams, Memristor, ThresholdDevice};

    fn sweep() -> IvSweep {
        IvSweep::new(Voltage::from_volts(3.5), 100, Time::from_nano_seconds(2.0))
    }

    #[test]
    fn waveform_is_triangular_and_closed() {
        let s = IvSweep::new(Voltage::from_volts(2.0), 4, Time::from_nano_seconds(1.0));
        let vs: Vec<f64> = s.waveform().map(cim_units::Voltage::as_volts).collect();
        assert_eq!(vs.len(), 16);
        let peak = vs.iter().copied().fold(f64::MIN, f64::max);
        let trough = vs.iter().copied().fold(f64::MAX, f64::min);
        assert!((peak - 2.0).abs() < 1e-12);
        assert!((trough + 2.0).abs() < 1e-12);
        assert!(vs.last().expect("nonempty").abs() < 1e-12);
    }

    #[test]
    fn threshold_device_shows_bipolar_hysteresis() {
        let mut d = ThresholdDevice::new_hrs(DeviceParams::table1_cim());
        let trace = sweep().run(&mut d);
        // Device must have SET during the positive ramp…
        let peak_i = trace
            .iter()
            .map(|p| p.i.get().abs())
            .fold(f64::MIN, f64::max);
        let r_on_current = 3.5 / DeviceParams::table1_cim().r_on.get();
        assert!(peak_i > 0.5 * r_on_current, "device never reached LRS");
        // …and RESET by the end of the negative ramp.
        assert!(d.is_hrs());
    }

    #[test]
    fn crs_sweep_shows_current_spike_then_blocking() {
        // Fig. 4: sweeping a '0' cell positive produces the ON window
        // (current spike between Vth1 and Vth2) and ends in '1'.
        let mut cell = Crs::new_zero(DeviceParams::table1_cim());
        let trace = sweep().run(&mut cell);
        let quarter = trace.len() / 4;
        let up = &trace[..quarter];
        let peak_up = up.iter().map(|p| p.i.get()).fold(f64::MIN, f64::max);
        let low_v_leak = up[quarter / 10].i.get();
        assert!(
            peak_up > 100.0 * low_v_leak.abs().max(1e-12),
            "no ON-window current spike: peak {peak_up}, leak {low_v_leak}"
        );
        assert_eq!(cell.state().bit(), Some(false), "full sweep returns to '0'");
    }

    #[test]
    fn crs_low_voltage_region_blocks_both_states() {
        // The storage states must be indistinguishable below Vth1.
        let p = DeviceParams::table1_cim();
        for make in [Crs::new_zero, Crs::new_one] {
            let cell = make(p.clone());
            let i = cell.current_at(Voltage::from_milli_volts(500.0));
            // Less than 1% of an LRS-level current.
            let i_lrs = Voltage::from_milli_volts(500.0) / p.r_on;
            assert!(i.get() < 0.01 * i_lrs.get());
        }
    }

    #[test]
    #[should_panic(expected = "at least one point")]
    fn rejects_empty_sweep() {
        let _ = IvSweep::new(Voltage::from_volts(1.0), 0, Time::from_nano_seconds(1.0));
    }
}
