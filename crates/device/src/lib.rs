//! Memristive device models for the CIM simulator.
//!
//! The DATE'15 CIM paper (Section IV) argues that redox-based resistive
//! switches (ReRAM "memristors") are the key enabler of
//! computation-in-memory because one two-terminal device implements **both**
//! storage and logic. This crate provides the device-level substrate that
//! the rest of the simulator builds on:
//!
//! * [`Memristor`] — the behavioural trait: apply a voltage for a duration,
//!   observe the (state-dependent) resistance.
//! * [`LinearIonDrift`] — the classic Strukov/HP TiO₂ model with selectable
//!   [`WindowFunction`]s (Joglekar, Biolek, Prodromakis), kept for model
//!   comparison; the paper notes "simple memristor models fail to predict
//!   the correct device behaviour".
//! * [`ThresholdDevice`] — a VTEAM-style bipolar switch with strongly
//!   non-linear switching kinetics; the workhorse used for stateful logic
//!   and crossbar storage. Parameterised by [`DeviceParams`] presets that
//!   encode Table 1 / Section IV technology numbers (200 ps writes, 1 fJ
//!   per write, 10 nm feature size, …).
//! * [`Crs`] — a complementary resistive switch: two anti-serial bipolar
//!   devices in one cell (Linn et al.), whose four-threshold hysteresis is
//!   the subject of the paper's Fig. 4 and whose sneak-path immunity
//!   motivates the crossbar of Fig. 3.
//! * [`Variability`], [`FaultyDevice`], [`WearTracking`] — device-to-device
//!   and cycle-to-cycle spread, stuck-at faults, endurance/retention
//!   bookkeeping for failure-injection experiments.
//! * [`IvSweep`] — triangular-sweep harness producing the I-V traces used
//!   to regenerate Fig. 4.
//!
//! # Example: switching a device and reading it back
//!
//! ```
//! use cim_device::{DeviceParams, Memristor, ThresholdDevice, TwoTerminal};
//!
//! let params = DeviceParams::table1_cim();
//! let mut cell = ThresholdDevice::new_hrs(params.clone());
//!
//! // A nominal write pulse (Table 1: 200 ps) switches HRS -> LRS.
//! cell.apply(params.write_voltage, params.write_time);
//! assert!(cell.is_lrs());
//!
//! // A half-select pulse must NOT disturb the cell (sneak-path safety).
//! let mut other = ThresholdDevice::new_hrs(params.clone());
//! other.apply(params.write_voltage / 2.0, params.write_time);
//! assert!(other.is_hrs());
//! ```

mod crs;
mod error;
mod faults;
mod ion_drift;
mod memristor;
mod params;
mod pickett;
mod sweep;
mod threshold;
mod variability;
mod wear;

pub use crs::{Crs, CrsState};
pub use error::DeviceError;
pub use faults::{Fault, FaultMap, FaultyDevice};
pub use ion_drift::{IonDriftParams, LinearIonDrift, WindowFunction};
pub use memristor::{Memristor, Polarity, TwoTerminal};
pub use params::DeviceParams;
pub use pickett::{PickettDevice, PickettParams};
pub use sweep::{IvPoint, IvSweep};
pub use threshold::ThresholdDevice;
pub use variability::Variability;
pub use wear::WearTracking;
