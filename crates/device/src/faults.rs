//! Stuck-at and drift fault injection.

use std::collections::BTreeSet;

use cim_units::{Resistance, Time, Voltage};
use serde::{Deserialize, Serialize};

use crate::memristor::{Memristor, TwoTerminal};

/// A manufacturing or wear-out fault mode of a resistive cell.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum Fault {
    /// The cell is permanently shorted in its low-resistive state
    /// (over-formed filament); writes have no effect.
    StuckAtLrs,
    /// The cell is permanently open in its high-resistive state (broken
    /// filament / unformed cell); writes have no effect.
    StuckAtHrs,
    /// The stored state relaxes towards HRS at `rate_per_second` — a crude
    /// retention-loss model.
    Drift {
        /// State decay per second of simulated time.
        rate_per_second: f64,
    },
}

/// The live set of known-bad crossbar columns: columns whose devices
/// are worn out (endurance exhausted) or stuck, and must not receive
/// new operand or scratch data.
///
/// This is the architecture-level face of device faults: a
/// [`FaultyDevice`] models *one* broken cell electrically, while a
/// `FaultMap` records *which columns* field monitoring (read-after-
/// write scrubbing, wear ledgers crossing rated cycles) has retired, so
/// mappers can steer placements around them. Column-granular because
/// broadcast logic stresses whole columns uniformly — when one device
/// in a column wears out under the broadcast model, its siblings are at
/// the same cycle count.
///
/// ```
/// use cim_device::FaultMap;
///
/// let mut map = FaultMap::new();
/// map.retire(7);
/// assert!(map.is_bad(7));
/// assert!(map.first_bad_in(0..16), "span [0,16) crosses column 7");
/// assert!(!map.first_bad_in(8..16));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultMap {
    bad_columns: BTreeSet<usize>,
}

impl FaultMap {
    /// An empty map: every column healthy.
    pub fn new() -> Self {
        Self::default()
    }

    /// A map with the given columns already retired.
    pub fn from_columns(columns: impl IntoIterator<Item = usize>) -> Self {
        Self {
            bad_columns: columns.into_iter().collect(),
        }
    }

    /// Marks `column` bad. Idempotent.
    pub fn retire(&mut self, column: usize) {
        self.bad_columns.insert(column);
    }

    /// True when `column` has been retired.
    pub fn is_bad(&self, column: usize) -> bool {
        self.bad_columns.contains(&column)
    }

    /// The lowest retired column inside `span`, if any — the anchor a
    /// mapping diagnostic points at.
    pub fn bad_in(&self, span: std::ops::Range<usize>) -> Option<usize> {
        self.bad_columns.range(span).next().copied()
    }

    /// True when `span` contains at least one retired column.
    pub fn first_bad_in(&self, span: std::ops::Range<usize>) -> bool {
        self.bad_in(span).is_some()
    }

    /// Number of retired columns.
    pub fn len(&self) -> usize {
        self.bad_columns.len()
    }

    /// True when no column has been retired.
    pub fn is_empty(&self) -> bool {
        self.bad_columns.is_empty()
    }

    /// The retired columns, ascending.
    pub fn columns(&self) -> impl Iterator<Item = usize> + '_ {
        self.bad_columns.iter().copied()
    }
}

/// Wraps a device model and injects a [`Fault`].
///
/// Used by the failure-injection tests and the reliability examples: a
/// stuck cell silently corrupts IMPLY logic, and the comparator tests
/// demonstrate the resulting wrong answers are *detectable* by
/// read-after-write.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultyDevice<D> {
    inner: D,
    fault: Fault,
}

impl<D: Memristor> FaultyDevice<D> {
    /// Injects `fault` into `device`.
    pub fn new(device: D, fault: Fault) -> Self {
        let mut faulty = Self {
            inner: device,
            fault,
        };
        faulty.enforce();
        faulty
    }

    /// The injected fault.
    pub fn fault(&self) -> Fault {
        self.fault
    }

    /// Consumes the wrapper, returning the underlying device.
    pub fn into_inner(self) -> D {
        self.inner
    }

    fn enforce(&mut self) {
        match self.fault {
            Fault::StuckAtLrs => self.inner.set_state(1.0),
            Fault::StuckAtHrs => self.inner.set_state(0.0),
            Fault::Drift { .. } => {}
        }
    }
}

impl<D: Memristor> Memristor for FaultyDevice<D> {
    fn state(&self) -> f64 {
        self.inner.state()
    }

    fn set_state(&mut self, x: f64) {
        self.inner.set_state(x);
        self.enforce();
    }
}

impl<D: Memristor> TwoTerminal for FaultyDevice<D> {
    fn resistance(&self) -> Resistance {
        self.inner.resistance()
    }

    fn apply(&mut self, v: Voltage, dt: Time) {
        match self.fault {
            Fault::StuckAtLrs | Fault::StuckAtHrs => {
                // Electrically the terminal still conducts, but the state
                // is pinned.
            }
            Fault::Drift { rate_per_second } => {
                self.inner.apply(v, dt);
                let decayed = self.inner.state() - rate_per_second * dt.get();
                self.inner.set_state(decayed.clamp(0.0, 1.0));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DeviceParams, ThresholdDevice};

    fn base() -> ThresholdDevice {
        ThresholdDevice::new_hrs(DeviceParams::table1_cim())
    }

    #[test]
    fn stuck_at_lrs_ignores_writes() {
        let mut d = FaultyDevice::new(base(), Fault::StuckAtLrs);
        assert!(d.is_lrs());
        let p = DeviceParams::table1_cim();
        d.apply(-p.write_voltage, p.write_time * 100.0);
        assert!(d.is_lrs());
        d.write_bit(false);
        assert!(d.is_lrs(), "set_state must re-pin a stuck cell");
    }

    #[test]
    fn stuck_at_hrs_ignores_writes() {
        let mut d = FaultyDevice::new(base(), Fault::StuckAtHrs);
        let p = DeviceParams::table1_cim();
        d.apply(p.write_voltage, p.write_time * 100.0);
        assert!(d.is_hrs());
    }

    #[test]
    fn drift_decays_stored_state_over_time() {
        let mut d = FaultyDevice::new(
            base(),
            Fault::Drift {
                rate_per_second: 0.1,
            },
        );
        d.write_bit(true);
        // 5 simulated seconds at 0.1/s → state 0.5.
        d.apply(Voltage::ZERO, Time::from_seconds(5.0));
        assert!((d.state() - 0.5).abs() < 1e-9);
        // Long enough and the bit flips — a retention failure.
        d.apply(Voltage::ZERO, Time::from_seconds(10.0));
        assert!(d.is_hrs());
    }

    #[test]
    fn drift_device_still_switches_under_writes() {
        let p = DeviceParams::table1_cim();
        let mut d = FaultyDevice::new(
            base(),
            Fault::Drift {
                rate_per_second: 1e-3,
            },
        );
        d.apply(p.write_voltage, p.write_time);
        assert!(d.is_lrs());
    }

    #[test]
    fn fault_map_tracks_retired_columns_and_spans() {
        let mut map = FaultMap::new();
        assert!(map.is_empty());
        map.retire(3);
        map.retire(3);
        map.retire(10);
        assert_eq!(map.len(), 2);
        assert!(map.is_bad(3) && map.is_bad(10));
        assert!(!map.is_bad(4));
        assert_eq!(map.bad_in(0..8), Some(3));
        assert_eq!(map.bad_in(4..10), None);
        assert!(map.first_bad_in(9..11));
        assert_eq!(map.columns().collect::<Vec<_>>(), vec![3, 10]);
        assert_eq!(map, FaultMap::from_columns([10, 3, 3]));
    }

    #[test]
    fn into_inner_returns_device() {
        let d = FaultyDevice::new(base(), Fault::StuckAtLrs);
        assert_eq!(d.fault(), Fault::StuckAtLrs);
        let inner = d.into_inner();
        assert!(inner.is_lrs());
    }
}
