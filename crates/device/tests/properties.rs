//! Property-based tests for device-model invariants.

use cim_device::{
    Crs, DeviceParams, IonDriftParams, LinearIonDrift, Memristor, ThresholdDevice, TwoTerminal,
    WindowFunction,
};
use cim_units::{Time, Voltage};
use proptest::prelude::*;

fn any_window() -> impl Strategy<Value = WindowFunction> {
    prop_oneof![
        Just(WindowFunction::None),
        (1u32..4).prop_map(|p| WindowFunction::Joglekar { p }),
        (1u32..4).prop_map(|p| WindowFunction::Biolek { p }),
        (1u32..4, 0.1f64..1.0).prop_map(|(p, j)| WindowFunction::Prodromakis { p, j }),
    ]
}

proptest! {
    #[test]
    fn threshold_state_stays_bounded(
        x0 in 0.0f64..=1.0,
        volts in -5.0f64..5.0,
        ns in 0.0f64..100.0,
    ) {
        let mut d = ThresholdDevice::with_state(DeviceParams::table1_cim(), x0);
        d.apply(Voltage::from_volts(volts), Time::from_nano_seconds(ns));
        prop_assert!((0.0..=1.0).contains(&d.state()));
    }

    #[test]
    fn threshold_resistance_within_envelope(x in 0.0f64..=1.0) {
        let p = DeviceParams::table1_cim();
        let d = ThresholdDevice::with_state(p.clone(), x);
        let r = d.resistance();
        prop_assert!(r >= p.r_on);
        prop_assert!(r <= p.r_off);
    }

    #[test]
    fn sub_threshold_voltage_never_moves_state(
        x0 in 0.0f64..=1.0,
        frac in -0.99f64..0.99,
        ns in 0.0f64..1000.0,
    ) {
        let p = DeviceParams::table1_cim();
        let mut d = ThresholdDevice::with_state(p.clone(), x0);
        // Any voltage strictly inside (−v_reset, v_set) is inert.
        let v = Voltage::from_volts(frac * p.v_set.as_volts());
        d.apply(v, Time::from_nano_seconds(ns));
        prop_assert_eq!(d.state(), x0);
    }

    #[test]
    fn switching_is_monotone_in_time(
        ns_short in 0.01f64..1.0,
        scale in 1.0f64..10.0,
    ) {
        let p = DeviceParams::table1_cim();
        let mut short = ThresholdDevice::new_hrs(p.clone());
        let mut long = ThresholdDevice::new_hrs(p.clone());
        short.apply(p.write_voltage, Time::from_nano_seconds(ns_short));
        long.apply(p.write_voltage, Time::from_nano_seconds(ns_short * scale));
        prop_assert!(long.state() >= short.state());
    }

    #[test]
    fn ion_drift_state_stays_bounded(
        x0 in 0.0f64..=1.0,
        volts in -3.0f64..3.0,
        us in 0.0f64..10.0,
        window in any_window(),
    ) {
        let params = IonDriftParams { window, ..IonDriftParams::hp_tio2() };
        let mut d = LinearIonDrift::new(params, x0);
        d.apply(Voltage::from_volts(volts), Time::from_micro_seconds(us));
        prop_assert!((0.0..=1.0).contains(&d.state()));
        prop_assert!(d.resistance().get() > 0.0);
    }

    #[test]
    fn window_functions_bounded_on_unit_interval(
        x in 0.0f64..=1.0,
        sign in prop_oneof![Just(1.0f64), Just(-1.0f64)],
        window in any_window(),
    ) {
        let f = window.eval(x, sign);
        prop_assert!(f <= 1.0 + 1e-12);
        // Windows may only *slow* drift, never reverse it.
        prop_assert!(f >= -1e-12, "window went negative: {f}");
    }

    #[test]
    fn crs_write_read_round_trip(bits in prop::collection::vec(any::<bool>(), 1..12)) {
        let mut cell = Crs::new_zero(DeviceParams::table1_cim());
        for bit in bits {
            cell.write(bit);
            prop_assert_eq!(cell.state().bit(), Some(bit));
            prop_assert_eq!(cell.read_restore(), bit);
            prop_assert_eq!(cell.state().bit(), Some(bit));
        }
    }

    #[test]
    fn crs_storage_states_block_low_voltage(bit in any::<bool>(), mv in 1.0f64..900.0) {
        let p = DeviceParams::table1_cim();
        let mut cell = Crs::new_zero(p.clone());
        cell.write_bit_ideal(bit);
        let i = cell.current_at(Voltage::from_milli_volts(mv));
        let i_lrs_level = Voltage::from_milli_volts(mv) / p.r_on;
        // Sneak-path immunity: below Vth1 a CRS cell passes < 2% of an
        // LRS-level current regardless of the stored bit.
        prop_assert!(i.get() < 0.02 * i_lrs_level.get());
    }
}
