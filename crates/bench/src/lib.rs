//! Shared plumbing for the benchmark binaries.
//!
//! Each binary under `src/bin/` regenerates one table or figure of the
//! DATE'15 CIM paper (see DESIGN.md's experiment index) and writes its
//! data series as CSV under `results/`. The criterion benches under
//! `benches/` measure the simulator itself and carry the ablation
//! studies.

use std::fs;
use std::path::{Path, PathBuf};

/// Returns the `results/` directory at the workspace root, creating it
/// if needed.
///
/// # Panics
///
/// Panics if the directory cannot be created.
pub fn results_dir() -> PathBuf {
    // The binaries run from the workspace root via `cargo run`; fall
    // back to the manifest's grandparent for direct invocation.
    let dir = if Path::new("Cargo.toml").exists() {
        PathBuf::from("results")
    } else {
        Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results")
    };
    fs::create_dir_all(&dir).expect("create results directory");
    dir
}

/// Writes `contents` to `results/<name>` and reports the path on stdout.
///
/// # Panics
///
/// Panics on I/O errors — benches should fail loudly.
pub fn write_csv(name: &str, contents: &str) {
    let path = results_dir().join(name);
    fs::write(&path, contents).expect("write results csv");
    println!("\n[written] {}", path.display());
}

/// Resolves `name` against the workspace root (where `BENCH_*.json`
/// snapshots are checked in), whether the binary runs via `cargo run`
/// from the root or directly from the target directory.
pub fn repo_root_file(name: &str) -> PathBuf {
    if Path::new("Cargo.toml").exists() {
        PathBuf::from(name)
    } else {
        Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../..")
            .join(name)
    }
}

/// Minimal flag scanner for the bench binaries: `has("--flag")` and
/// `value("--key")`.
#[derive(Debug, Clone)]
pub struct Args {
    argv: Vec<String>,
}

impl Args {
    /// Captures the process arguments.
    pub fn capture() -> Self {
        Self {
            argv: std::env::args().skip(1).collect(),
        }
    }

    /// Builds from an explicit list (tests).
    pub fn from_list(argv: &[&str]) -> Self {
        Self {
            argv: argv.iter().map(|s| (*s).to_string()).collect(),
        }
    }

    /// True if the flag is present.
    pub fn has(&self, flag: &str) -> bool {
        self.argv.iter().any(|a| a == flag)
    }

    /// The value following `key`, if any.
    pub fn value(&self, key: &str) -> Option<&str> {
        self.argv
            .iter()
            .position(|a| a == key)
            .and_then(|i| self.argv.get(i + 1))
            .map(String::as_str)
    }

    /// A numeric flag value: `default` when absent, exits with status 2
    /// on garbage (the `--threads` convention shared by every bench
    /// front-end — an unparseable value must never fall back silently).
    pub fn numeric(&self, key: &str, default: usize) -> usize {
        match self.value(key) {
            None => default,
            Some(raw) => raw.parse().unwrap_or_else(|_| {
                eprintln!("error: {key} expects a non-negative integer, got `{raw}`");
                std::process::exit(2);
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn args_parse_flags_and_values() {
        let args = Args::from_list(&["--fast", "--n", "32"]);
        assert!(args.has("--fast"));
        assert!(!args.has("--slow"));
        assert_eq!(args.value("--n"), Some("32"));
        assert_eq!(args.value("--missing"), None);
    }

    #[test]
    fn results_dir_exists_after_call() {
        let dir = results_dir();
        assert!(dir.exists());
    }
}
