//! Regenerates **Fig. 5**: the two circuit implementations of material
//! implication — (a) two devices + load resistor, (b) a single CRS cell —
//! with full truth tables, step traces, and cost comparison.
//!
//! ```bash
//! cargo run --release -p cim-bench --bin fig5_imp
//! ```

use cim_bench::write_csv;
use cim_device::DeviceParams;
use cim_logic::{CrsImp, ImplyEngine, ImplyParams, ProgramBuilder, Step};

fn main() {
    let device = DeviceParams::table1_cim();
    let params = ImplyParams::for_device(&device);
    println!("== Fig. 5(a): p IMP q with two devices + R_G ==");
    println!(
        "operating point: V_COND = {}, V_SET = {}, R_G = {}\n",
        params.v_cond, params.v_set_pulse, params.r_g
    );
    println!("steps per IMP: 3 (set p, set q, pulse) — we charge the conditional pulse\n");

    let mut csv = String::from("variant,p,q,result,steps,devices,energy_j\n");
    println!("{:>3} {:>3} {:>8} {:>26}", "p", "q", "p IMP q", "cost");
    for (p, q) in [(false, false), (false, true), (true, false), (true, true)] {
        let mut engine = ImplyEngine::new(2, device.clone(), params.clone());
        engine.write(0, p);
        engine.write(1, q);
        engine.exec_step(Step::Imply(0, 1));
        let out = engine.read(1);
        let cost = engine.cost();
        println!(
            "{:>3} {:>3} {:>8} {:>26}",
            u8::from(p),
            u8::from(q),
            u8::from(out),
            cost.to_string()
        );
        assert_eq!(out, !p || q);
        csv.push_str(&format!(
            "two-device,{},{},{},{},{},{:e}\n",
            u8::from(p),
            u8::from(q),
            u8::from(out),
            cost.steps,
            cost.devices,
            cost.energy.as_joules()
        ));
    }

    println!("\n== Fig. 5(b): p IMP q on a single CRS cell ==");
    println!("steps per IMP: 2 (init Z to '1', apply (V_q, V_p))\n");
    println!("{:>3} {:>3} {:>8} {:>26}", "p", "q", "p IMP q", "cost");
    for (p, q) in [(false, false), (false, true), (true, false), (true, true)] {
        let mut gate = CrsImp::new(&device);
        let out = gate.imp(p, q);
        let cost = gate.cost();
        println!(
            "{:>3} {:>3} {:>8} {:>26}",
            u8::from(p),
            u8::from(q),
            u8::from(out),
            cost.to_string()
        );
        csv.push_str(&format!(
            "single-crs,{},{},{},{},{},{:e}\n",
            u8::from(p),
            u8::from(q),
            u8::from(out),
            cost.steps,
            cost.devices,
            cost.energy.as_joules()
        ));
    }

    println!("\n== IMP as a universal basis: NAND from 3 steps (Fig. 5 caption) ==");
    let mut b = ProgramBuilder::new();
    let p = b.input();
    let q = b.input();
    let out = b.nand(p, q);
    let program = b.finish(vec![out]);
    let mut engine = ImplyEngine::for_program(&program);
    for (x, y) in [(false, false), (false, true), (true, false), (true, true)] {
        let r = engine.run(&program, &[x, y]);
        println!(
            "NAND({}, {}) = {}  [{} steps]",
            u8::from(x),
            u8::from(y),
            u8::from(r[0]),
            program.len()
        );
    }

    write_csv("fig5_imp.csv", &csv);
}
