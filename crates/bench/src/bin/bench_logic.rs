//! Functional-kernel snapshot: measures the bit-sliced IMPLY kernels
//! against the scalar interpreter — the eq-comparator and ripple-adder
//! microkernels at every lane-block width (u64×1 / ×4 / ×8), end-to-end
//! scaled DNA + additions executor runs, and the paper's full-scale 10⁶
//! parallel additions — and writes the numbers to `BENCH_logic.json` at
//! the workspace root, so the perf trajectory is tracked in-repo from PR
//! to PR.
//!
//! ```bash
//! cargo run --release -p cim-bench --bin bench_logic            # full run
//! cargo run --release -p cim-bench --bin bench_logic -- --quick # CI-sized
//! cargo run --release -p cim-bench --bin bench_logic -- --check # schema only
//! ```
//!
//! `--check` validates the checked-in snapshot against the
//! `cim-bench-logic/2` schema without re-measuring **and gates the
//! wide-block headline** (`million_adds_wide_speedup > 1.0`: ×4-or-wider
//! lane blocks must beat the 64-lane engine on the full-scale addition
//! run — real measured ILP, not a projection); `--quick` trims workload
//! sizes and sample counts for smoke runs.

use std::time::Instant;

use cim_bench::{repo_root_file, Args};
use cim_logic::{BitSliceEngine, Comparator, ImplyAdder, LaneBlock, Lanes4, Lanes8};
use cim_sim::{BatchPolicy, CimExecutor, ExecutionBackend, KernelPolicy};
use cim_workloads::{AdditionWorkload, DnaWorkload};

const SCHEMA: &str = "cim-bench-logic/2";

/// Every field a valid snapshot must carry, in schema order.
const REQUIRED_FIELDS: [&str; 23] = [
    "schema",
    "samples",
    "comparator_ops",
    "comparator_scalar_ns",
    "comparator_sliced_ns",
    "comparator_sliced_x4_ns",
    "comparator_sliced_x8_ns",
    "comparator_speedup",
    "adder_ops",
    "adder_scalar_ns",
    "adder_sliced_ns",
    "adder_sliced_x4_ns",
    "adder_sliced_x8_ns",
    "adder_speedup",
    "million_adds_ops",
    "million_adds_x1_ns",
    "million_adds_x4_ns",
    "million_adds_x8_ns",
    "million_adds_wide_speedup",
    "e2e_scalar_ns",
    "e2e_sliced_ns",
    "e2e_speedup",
    "e2e_sliced_x8_ns",
];

/// Median wall-clock nanoseconds of `routine` over `samples` runs (one
/// un-timed warm-up first).
fn median_ns(samples: usize, mut routine: impl FnMut()) -> f64 {
    routine();
    let mut times: Vec<u128> = (0..samples)
        .map(|_| {
            let start = Instant::now();
            routine();
            start.elapsed().as_nanos()
        })
        .collect();
    times.sort_unstable();
    times[times.len() / 2] as f64
}

/// Extracts the numeric value of `field` from the hand-written snapshot.
fn numeric_field(body: &str, field: &str) -> Option<f64> {
    let key = format!("\"{field}\":");
    let rest = &body[body.find(&key)? + key.len()..];
    let rest = rest.trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == '+'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn check(path: &std::path::Path) -> Result<(), String> {
    let body = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    if !body.trim_start().starts_with('{') || !body.trim_end().ends_with('}') {
        return Err("snapshot is not a JSON object".into());
    }
    if !body.contains(&format!("\"schema\": \"{SCHEMA}\"")) {
        return Err(format!("snapshot does not declare schema {SCHEMA}"));
    }
    for field in REQUIRED_FIELDS {
        if !body.contains(&format!("\"{field}\":")) {
            return Err(format!("snapshot is missing required field '{field}'"));
        }
    }
    let wide = numeric_field(&body, "million_adds_wide_speedup")
        .ok_or("million_adds_wide_speedup is not numeric")?;
    if wide <= 1.0 {
        return Err(format!(
            "million_adds_wide_speedup {wide} is at or below the 1.0 gate: wide lane \
             blocks must beat the 64-lane engine on the full-scale addition run"
        ));
    }
    Ok(())
}

/// Comparator pass over pre-packed `B`-block groups: returns median ns.
fn comparator_pass<B: LaneBlock>(samples: usize, cmp: &Comparator, pairs: &[(u8, u8)]) -> f64 {
    let packed: Vec<(B, B, B, B, B)> = pairs
        .chunks(B::LANES)
        .map(|group| {
            let (mut a0, mut a1, mut b0, mut b1) = (B::ZERO, B::ZERO, B::ZERO, B::ZERO);
            for (lane, &(a, b)) in group.iter().enumerate() {
                a0.set_lane(lane, a & 1 == 1);
                a1.set_lane(lane, a & 2 == 2);
                b0.set_lane(lane, b & 1 == 1);
                b1.set_lane(lane, b & 2 == 2);
            }
            (a0, a1, b0, b1, B::lane_mask(group.len()))
        })
        .collect();
    median_ns(samples, || {
        let mut engine = BitSliceEngine::<B>::wide();
        let mut matches = 0u64;
        for &(a0, a1, b0, b1, mask) in &packed {
            let eq = cmp
                .matches_sliced_wide(&mut engine, a0, a1, b0, b1)
                .and(mask);
            for w in 0..B::WORDS {
                matches += u64::from(eq.word(w).count_ones());
            }
        }
        std::hint::black_box(matches);
    })
}

/// Adder pass over `B::LANES`-wide operand groups: returns median ns.
fn adder_pass<B: LaneBlock>(samples: usize, adder: &ImplyAdder, operands: &[(u64, u64)]) -> f64 {
    median_ns(samples, || {
        let mut engine = BitSliceEngine::<B>::wide();
        let mut sums = vec![0u64; B::LANES];
        let mut checksum = 0u64;
        for group in operands.chunks(B::LANES) {
            adder.add_sliced_wide(&mut engine, group, &mut sums[..group.len()]);
            for &s in &sums[..group.len()] {
                checksum = checksum.wrapping_add(s);
            }
        }
        std::hint::black_box(checksum);
    })
}

fn main() {
    let args = Args::capture();
    let path = repo_root_file("BENCH_logic.json");

    if args.has("--check") {
        match check(&path) {
            Ok(()) => println!(
                "[ok] {} matches schema {SCHEMA} and the wide-block gate",
                path.display()
            ),
            Err(e) => {
                eprintln!("[fail] {e}");
                std::process::exit(1);
            }
        }
        return;
    }

    let quick = args.has("--quick");
    let samples = if quick { 10 } else { 50 };
    let e2e_samples = if quick { 3 } else { 9 };

    // ── Eq-comparator kernel: one pass over `cmp_ops` symbol pairs,
    // at every lane-block width ──
    // Inputs are marshalled outside the timed region on both sides so
    // the comparison isolates kernel execution (the e2e section below
    // charges packing/transposition at its real place in the pipeline).
    let cmp = Comparator::new();
    let cmp_ops: usize = if quick { 1 << 14 } else { 1 << 17 };
    let pairs: Vec<(u8, u8)> = (0..cmp_ops)
        .map(|k| ((k % 4) as u8, ((k / 4) % 4) as u8))
        .collect();
    let scalar_inputs: Vec<[bool; 4]> = pairs
        .iter()
        .map(|&(a, b)| [a & 1 == 1, a & 2 == 2, b & 1 == 1, b & 2 == 2])
        .collect();

    let cmp_scalar = {
        let program = cmp.eq_program();
        median_ns(samples, || {
            let (mut scratch, mut out) = (Vec::new(), Vec::new());
            let mut matches = 0u64;
            for inputs in &scalar_inputs {
                program.evaluate_into(inputs, &mut scratch, &mut out);
                matches += u64::from(out[0]);
            }
            std::hint::black_box(matches);
        })
    };
    let cmp_sliced = comparator_pass::<u64>(samples, &cmp, &pairs);
    let cmp_sliced_x4 = comparator_pass::<Lanes4>(samples, &cmp, &pairs);
    let cmp_sliced_x8 = comparator_pass::<Lanes8>(samples, &cmp, &pairs);
    let cmp_speedup = cmp_scalar / cmp_sliced;

    // ── 32-bit ripple adder: one pass over `add_ops` operand pairs,
    // at every lane-block width ──
    let adder = ImplyAdder::new(32);
    let add_ops: usize = if quick { 1 << 10 } else { 1 << 13 };
    let operands: Vec<(u64, u64)> = (0..add_ops as u64)
        .map(|k| {
            (
                k.wrapping_mul(0x9E37_79B9) & 0xFFFF_FFFF,
                k.wrapping_mul(0x85EB_CA6B).rotate_left(9) & 0xFFFF_FFFF,
            )
        })
        .collect();

    let add_scalar = median_ns(samples, || {
        let mut checksum = 0u64;
        for &(a, b) in &operands {
            checksum = checksum.wrapping_add(adder.add_reference(a, b));
        }
        std::hint::black_box(checksum);
    });
    let add_sliced = adder_pass::<u64>(samples, &adder, &operands);
    let add_sliced_x4 = adder_pass::<Lanes4>(samples, &adder, &operands);
    let add_sliced_x8 = adder_pass::<Lanes8>(samples, &adder, &operands);
    let add_speedup = add_scalar / add_sliced;

    // ── Full-scale 10⁶ parallel additions (the paper's headline
    // workload), measured — not projected — through the executor at
    // each lane-block width ──
    let million_ops: u64 = if quick { 100_000 } else { 1_000_000 };
    let million = AdditionWorkload::scaled(million_ops, 7);
    let million_samples = if quick { 3 } else { 5 };
    let million_run = |kernel: KernelPolicy| {
        let exec = CimExecutor::with_policies(BatchPolicy::SERIAL, kernel);
        median_ns(million_samples, || {
            let out =
                ExecutionBackend::<AdditionWorkload>::run(&exec, &million).expect("million adds");
            std::hint::black_box(out.digest.checksum);
        })
    };
    let million_x1 = million_run(KernelPolicy::BitSliced);
    let million_x4 = million_run(KernelPolicy::BitSliced4);
    let million_x8 = million_run(KernelPolicy::BitSliced8);
    let million_wide_speedup = million_x1 / million_x4.min(million_x8);

    // ── End-to-end: CimExecutor DNA + additions, scalar vs sliced ──
    // Serial batch isolates the kernel effect from thread scaling.
    let dna = DnaWorkload::scaled(if quick { 8_000 } else { 40_000 }, 23);
    let adds = AdditionWorkload::scaled(if quick { 20_000 } else { 50_000 }, 24);
    let e2e = |kernel: KernelPolicy| {
        let exec = CimExecutor::with_policies(BatchPolicy::SERIAL, kernel);
        median_ns(e2e_samples, || {
            let d = ExecutionBackend::<DnaWorkload>::run(&exec, &dna).expect("dna run");
            let a = ExecutionBackend::<AdditionWorkload>::run(&exec, &adds).expect("additions run");
            std::hint::black_box((d.digest.operations, a.digest.checksum));
        })
    };
    let e2e_scalar = e2e(KernelPolicy::Scalar);
    let e2e_sliced = e2e(KernelPolicy::BitSliced);
    let e2e_sliced_x8 = e2e(KernelPolicy::BitSliced8);
    let e2e_speedup = e2e_scalar / e2e_sliced;

    let per = |total_ns: f64, ops: usize| total_ns / ops as f64;
    println!("== logic kernel snapshot ({samples} samples, median ns per pass) ==");
    println!(
        "comparator scalar       {cmp_scalar:>12.0}   ({:.2} ns/op, {cmp_ops} ops)",
        per(cmp_scalar, cmp_ops)
    );
    println!(
        "comparator sliced x1    {cmp_sliced:>12.0}   ({:.2} ns/op, {cmp_speedup:.1}x)",
        per(cmp_sliced, cmp_ops)
    );
    println!(
        "comparator sliced x4    {cmp_sliced_x4:>12.0}   ({:.2} ns/op)",
        per(cmp_sliced_x4, cmp_ops)
    );
    println!(
        "comparator sliced x8    {cmp_sliced_x8:>12.0}   ({:.2} ns/op)",
        per(cmp_sliced_x8, cmp_ops)
    );
    println!(
        "adder scalar            {add_scalar:>12.0}   ({:.1} ns/op, {add_ops} ops)",
        per(add_scalar, add_ops)
    );
    println!(
        "adder sliced x1         {add_sliced:>12.0}   ({:.1} ns/op, {add_speedup:.1}x)",
        per(add_sliced, add_ops)
    );
    println!(
        "adder sliced x4         {add_sliced_x4:>12.0}   ({:.1} ns/op)",
        per(add_sliced_x4, add_ops)
    );
    println!(
        "adder sliced x8         {add_sliced_x8:>12.0}   ({:.1} ns/op)",
        per(add_sliced_x8, add_ops)
    );
    println!("10^6 adds sliced x1     {million_x1:>12.0}   ({million_ops} ops)");
    println!("10^6 adds sliced x4     {million_x4:>12.0}");
    println!("10^6 adds sliced x8     {million_x8:>12.0}   (wide wins {million_wide_speedup:.2}x)");
    println!("e2e dna+adds scalar     {e2e_scalar:>12.0}");
    println!("e2e dna+adds sliced x1  {e2e_sliced:>12.0}   ({e2e_speedup:.1}x)");
    println!("e2e dna+adds sliced x8  {e2e_sliced_x8:>12.0}");

    // The vendored serde is a no-op stub, so the snapshot is written by
    // hand; `--check` validates exactly this shape.
    let json = format!(
        "{{\n  \"schema\": \"{SCHEMA}\",\n  \"samples\": {samples},\n  \
         \"comparator_ops\": {cmp_ops},\n  \"comparator_scalar_ns\": {cmp_scalar:.0},\n  \
         \"comparator_sliced_ns\": {cmp_sliced:.0},\n  \
         \"comparator_sliced_x4_ns\": {cmp_sliced_x4:.0},\n  \
         \"comparator_sliced_x8_ns\": {cmp_sliced_x8:.0},\n  \
         \"comparator_speedup\": {cmp_speedup:.1},\n  \"adder_ops\": {add_ops},\n  \
         \"adder_scalar_ns\": {add_scalar:.0},\n  \"adder_sliced_ns\": {add_sliced:.0},\n  \
         \"adder_sliced_x4_ns\": {add_sliced_x4:.0},\n  \
         \"adder_sliced_x8_ns\": {add_sliced_x8:.0},\n  \
         \"adder_speedup\": {add_speedup:.1},\n  \
         \"million_adds_ops\": {million_ops},\n  \
         \"million_adds_x1_ns\": {million_x1:.0},\n  \
         \"million_adds_x4_ns\": {million_x4:.0},\n  \
         \"million_adds_x8_ns\": {million_x8:.0},\n  \
         \"million_adds_wide_speedup\": {million_wide_speedup:.2},\n  \
         \"e2e_scalar_ns\": {e2e_scalar:.0},\n  \
         \"e2e_sliced_ns\": {e2e_sliced:.0},\n  \"e2e_speedup\": {e2e_speedup:.1},\n  \
         \"e2e_sliced_x8_ns\": {e2e_sliced_x8:.0}\n}}\n"
    );
    std::fs::write(&path, &json).expect("write BENCH_logic.json");
    println!("\n[written] {}", path.display());

    if cmp_speedup < 10.0 {
        eprintln!(
            "[warn] comparator speedup {cmp_speedup:.1}x is below the 10x target \
             (noisy machine?)"
        );
    }
    if e2e_speedup < 5.0 {
        eprintln!("[warn] end-to-end speedup {e2e_speedup:.1}x is below the 5x target");
    }
    if million_wide_speedup <= 1.0 {
        eprintln!(
            "[warn] wide-block speedup {million_wide_speedup:.2}x does not beat x1 — \
             `--check` will fail on this snapshot"
        );
    }
}
