//! Regenerates **Table 2** of the paper: three metrics × two workloads ×
//! two architectures, in three flavours — published, decoded paper-mode,
//! and our physical model — plus ablation sweeps.
//!
//! ```bash
//! cargo run --release -p cim-bench --bin table2
//! cargo run --release -p cim-bench --bin table2 -- --hit-ratio measured
//! cargo run --release -p cim-bench --bin table2 -- --threads 4
//! cargo run --release -p cim-bench --bin table2 -- --breakdown
//! cargo run --release -p cim-bench --bin table2 -- --smoke --breakdown
//! cargo run --release -p cim-bench --bin table2 -- --ablate-comparator
//! cargo run --release -p cim-bench --bin table2 -- --ablate-hitrate
//! ```
//!
//! `--breakdown` additionally renders the per-component cost-ledger
//! tables (where every joule and picosecond of each Table-2 cell landed)
//! and writes `results/table2_breakdown.csv`. `--smoke` shrinks both
//! workloads for CI-speed runs.

use cim_arch::{
    ByteComparator, Controller, ConventionalMachine, FunctionalUnit, Interconnect, Metrics,
    TiledCim,
};
use cim_bench::{write_csv, Args};
use cim_core::paper_mode;
use cim_core::{AdditionsExperiment, Experiment, HitRatioMode, Table2};
use cim_sim::{BatchPolicy, CimExecutor, ConventionalExecutor, ExecutionBackend};
use cim_units::{CostLedger, Phase};
use cim_workloads::{DnaSpec, DnaWorkload};

fn main() {
    let args = Args::capture();
    if args.has("--ablate-comparator") {
        ablate_comparator();
        return;
    }
    if args.has("--ablate-hitrate") {
        ablate_hitrate();
        return;
    }
    if args.has("--ablate-overhead") {
        ablate_overhead();
        return;
    }

    let hit_mode = match args.value("--hit-ratio") {
        Some("measured") => HitRatioMode::Measured,
        _ => HitRatioMode::PaperAssumption,
    };
    // `--threads 0` (the default) lets the batch driver use every core;
    // results are bit-identical at any setting. A value that is present
    // but unparseable is an error, not a silent fallback to auto.
    let batch = match args.value("--threads") {
        Some(_) => BatchPolicy::with_threads(args.numeric("--threads", 0)),
        None => BatchPolicy::auto(),
    };

    println!("== Table 2 reproduction ==\n");
    println!("-- as published (DATE'15, Table 2) --");
    let rows = ["energy-delay/op", "ops/J", "perf/area"];
    println!(
        "{:<18} {:>12} {:>12} {:>12} {:>12}",
        "metric", "conv DNA", "CIM DNA", "conv math", "CIM math"
    );
    for (name, row) in rows.iter().zip(paper_mode::PUBLISHED) {
        println!(
            "{name:<18} {:>12.4e} {:>12.4e} {:>12.4e} {:>12.4e}",
            row[0], row[1], row[2], row[3]
        );
    }

    println!("\n-- decoded paper formulas vs published (see EXPERIMENTS.md) --");
    for cell in paper_mode::decoded_cells() {
        println!(
            "{:<22} reconstructed {:>12.5e}  published {:>12.5e}  dev {:>6.2}%   [{}]",
            cell.cell,
            cell.reconstructed,
            cell.published,
            cell.deviation() * 100.0,
            cell.formula
        );
    }

    println!("\n-- our physical model (scaled execution + paper-scale projection) --\n");
    // `--smoke` shrinks both workloads so CI can exercise the full
    // pipeline (execution, projection, breakdown) in seconds.
    let smoke = args.has("--smoke");
    let dna_spec = if smoke {
        DnaSpec {
            ref_len: 30_000,
            coverage: 2,
            read_len: 100,
        }
    } else {
        DnaSpec {
            ref_len: 200_000,
            coverage: 5,
            read_len: 100,
        }
    };
    let dna = Experiment::new(DnaWorkload {
        spec: dna_spec,
        seed: 42,
    })
    .with_hit_ratio_mode(hit_mode)
    .with_batch(batch)
    .run()
    .expect("scaled DNA experiment executes");
    let math = if smoke {
        AdditionsExperiment::scaled(5_000, 42)
    } else {
        AdditionsExperiment::paper(42)
    }
    .with_batch(batch)
    .run()
    .expect("additions experiment executes");
    let table = Table2 { dna, math };
    println!("{}", table.to_markdown());
    write_csv("table2.csv", &table.to_csv());
    if args.has("--breakdown") {
        println!("{}", table.breakdown_markdown());
        write_csv("table2_breakdown.csv", &table.breakdown_csv());
    }
}

/// Ablation A3: sensitivity of the conventional DNA column to the
/// assumed CMOS comparator gate count (Table 1 never states it).
fn ablate_comparator() {
    println!("== Ablation A3: CMOS comparator gate count ==\n");
    println!(
        "{:>6} {:>14} {:>14} {:>14}",
        "gates", "EDP/op (J·s)", "ops/J", "ops/s/mm²"
    );
    let mut csv = String::from("gates,edp_per_op_js,ops_per_joule,ops_per_s_per_mm2\n");
    for gates in [30u32, 58, 80, 120] {
        let mut machine = ConventionalMachine::dna_paper();
        machine.unit = FunctionalUnit {
            gates,
            ..ByteComparator::unit()
        };
        let report = project(&machine);
        let m = Metrics::from_run(&report).expect("paper-scale projection is non-degenerate");
        println!(
            "{gates:>6} {:>14.4e} {:>14.4e} {:>14.4e}",
            m.energy_delay_per_op.get(),
            m.ops_per_joule,
            m.ops_per_second_per_mm2
        );
        csv.push_str(&format!(
            "{gates},{:e},{:e},{:e}\n",
            m.energy_delay_per_op.get(),
            m.ops_per_joule,
            m.ops_per_second_per_mm2
        ));
    }
    println!("\n(the conclusion is insensitive: cache access dominates the op energy)");
    write_csv("ablation_comparator.csv", &csv);
}

/// Ablation A4: cache hit-rate sensitivity — assumed vs measured.
fn ablate_hitrate() {
    println!("== Ablation A4: cache hit ratio (DNA workload) ==\n");
    let conv = ConventionalExecutor::new();
    let cim = CimExecutor::new();
    println!(
        "{:>6} {:>14} {:>14} {:>12}",
        "hit", "conv EDP/op", "CIM EDP/op", "CIM gain"
    );
    let mut csv = String::from("hit_ratio,conv_edp,cim_edp,gain\n");
    for hit in [0.30, 0.50, 0.70, 0.90, 0.98] {
        let c = Metrics::from_run(&conv.project_dna(hit)).expect("projection is non-degenerate");
        let i = Metrics::from_run(&cim.project_dna(hit)).expect("projection is non-degenerate");
        let gain = c.energy_delay_per_op.get() / i.energy_delay_per_op.get();
        println!(
            "{hit:>6.2} {:>14.4e} {:>14.4e} {:>12.1}",
            c.energy_delay_per_op.get(),
            i.energy_delay_per_op.get(),
            gain
        );
        csv.push_str(&format!(
            "{hit},{:e},{:e},{gain}\n",
            c.energy_delay_per_op.get(),
            i.energy_delay_per_op.get()
        ));
    }
    // And the measured point.
    let run = conv
        .run(&DnaWorkload {
            spec: DnaSpec {
                ref_len: 200_000,
                coverage: 3,
                read_len: 100,
            },
            seed: 42,
        })
        .expect("scaled DNA run executes");
    println!(
        "\nmeasured on a real sorted-index run: {:.3} overall, {:.3} index probes alone",
        run.measured_hit_ratio.unwrap_or(f64::NAN),
        run.index_hit_ratio.unwrap_or(f64::NAN)
    );
    write_csv("ablation_hitrate.csv", &csv);
}

/// Ablation A5: interconnect + controller overheads the paper costs at
/// zero. How much can the CIM math column absorb?
fn ablate_overhead() {
    println!("== Ablation A5: CIM interconnect/controller overhead (math column) ==\n");
    let conv = ConventionalExecutor::new();
    let workload = cim_workloads::AdditionWorkload::paper(42);
    let conv_report = conv
        .run(&workload)
        .expect("additions always execute")
        .report;
    let conv_metrics = Metrics::from_run(&conv_report).expect("executed run is non-degenerate");

    println!(
        "{:>28} {:>10} {:>14} {:>12} {:>12}",
        "configuration", "E-factor", "ops/J", "eff gain", "EDP gain"
    );
    let mut csv = String::from("config,energy_factor,ops_per_joule,eff_gain,edp_gain\n");
    let configs: Vec<(&str, Interconnect, Controller)> = vec![
        (
            "paper (free control)",
            Interconnect::ideal(),
            Controller::ideal(),
        ),
        (
            "realistic",
            Interconnect::realistic(),
            Controller::realistic(),
        ),
        (
            "poor locality (50%)",
            Interconnect {
                locality: 0.5,
                ..Interconnect::realistic()
            },
            Controller::realistic(),
        ),
        (
            "heavy control (20k gates)",
            Interconnect::realistic(),
            Controller {
                gates_per_tile: 20_000,
                ..Controller::realistic()
            },
        ),
    ];
    for (name, ic, ctl) in configs {
        let machine = TiledCim::math(workload.n_ops, workload.bits, ic, ctl);
        let mut ledger = CostLedger::new();
        machine.charge_batched(&mut ledger, Phase::Add, workload.n_ops);
        let report = cim_arch::RunReport::from_ledger(workload.n_ops, machine.area(), &ledger);
        let m = Metrics::from_run(&report).expect("overhead configs are non-degenerate");
        let (edp_gain, eff_gain, _) = m.improvement_over(&conv_metrics);
        println!(
            "{:>28} {:>10.2} {:>14.4e} {:>12.1} {:>12.1}",
            name,
            machine.energy_overhead_factor(),
            m.ops_per_joule,
            eff_gain,
            edp_gain
        );
        csv.push_str(&format!(
            "{name},{},{:e},{eff_gain},{edp_gain}\n",
            machine.energy_overhead_factor(),
            m.ops_per_joule
        ));
    }
    println!(
        "\n(the orders-of-magnitude story survives realistic overheads; it\n\
         erodes with poor data locality or heavyweight per-tile control —\n\
         the design pressure behind the paper's 'many aspects … still need\n\
         to be worked out')"
    );
    write_csv("ablation_overhead.csv", &csv);
}

fn project(machine: &ConventionalMachine) -> cim_arch::RunReport {
    let ops = DnaSpec::paper().comparisons();
    let mut ledger = CostLedger::new();
    machine.charge_batched(&mut ledger, Phase::Map, ops);
    cim_arch::RunReport::from_ledger(ops, machine.area(), &ledger)
}
