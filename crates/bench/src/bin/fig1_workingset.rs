//! Regenerates **Fig. 1**: the classification of computing systems by
//! working-set location, as an access-cost sweep.
//!
//! ```bash
//! cargo run --release -p cim-bench --bin fig1_workingset
//! ```

use cim_arch::working_set_sweep;
use cim_bench::write_csv;
use cim_units::{Energy, Time};

fn main() {
    println!("== Fig. 1: working-set location ladder ==\n");
    // One comparator-scale operation per working-set reference.
    let compute_time = Time::from_nano_seconds(0.25);
    let compute_energy = Energy::from_femto_joules(45.0);
    let rows = working_set_sweep(compute_time, compute_energy);

    println!(
        "{:<44} {:>12} {:>12} {:>14}",
        "class", "t/op", "E/op", "ops/s (1 unit)"
    );
    let mut csv = String::from("class,latency_s,energy_j,ops_per_s\n");
    let baseline = rows[0].1;
    for (cost, t, e) in &rows {
        println!(
            "{:<44} {:>12} {:>12} {:>14.3e}",
            cost.location.to_string(),
            t.to_string(),
            e.to_string(),
            1.0 / t.as_seconds()
        );
        csv.push_str(&format!(
            "{},{:e},{:e},{:e}\n",
            cost.location,
            t.as_seconds(),
            e.as_joules(),
            1.0 / t.as_seconds()
        ));
    }
    let last = rows.last().expect("five classes");
    println!(
        "\n(a) -> (e): {:.0}x faster, {:.0}x less energy per operation",
        baseline / last.1,
        rows[0].2 / last.2
    );
    write_csv("fig1_workingset.csv", &csv);
}
