//! Serving snapshot: drives sustained multi-tenant DNA query traffic
//! (lookup / compare / add) through the tiled fabric's serving
//! front-end and writes throughput and latency numbers to
//! `BENCH_serve.json` at the workspace root, so the serving-path
//! trajectory is tracked in-repo from PR to PR.
//!
//! ```bash
//! cargo run --release -p cim-bench --bin bench_serve              # full run
//! cargo run --release -p cim-bench --bin bench_serve -- --quick   # CI-sized
//! cargo run --release -p cim-bench --bin bench_serve -- --check   # schema only
//! cargo run --release -p cim-bench --bin bench_serve -- \
//!     --tiles 4 --threads 4 --queue-depth 256 --tenant-quota 96
//! ```
//!
//! Every run re-proves the fabric's two contracts before writing the
//! snapshot: the serve trace is bit-identical across executed tile
//! counts and thread counts, and the per-tile ledgers sum bit-for-bit
//! to the fabric ledger (checked through `cim_verify::certify_tiles`).

use std::time::Instant;

use cim_bench::{repo_root_file, Args};
use cim_fabric::{
    DispatchPolicy, FabricExecutor, ServeConfig, ServeFrontEnd, ServeReport, TrafficSpec,
};
use cim_sim::BatchPolicy;
use cim_verify::{certify_tiles, TileClaim};

const SCHEMA: &str = "cim-bench-serve/1";

/// Every field a valid snapshot must carry, in schema order.
const REQUIRED_FIELDS: [&str; 20] = [
    "schema",
    "queries",
    "tenants",
    "tiles",
    "threads",
    "queue_depth",
    "tenant_quota",
    "max_batch",
    "admitted",
    "rejected_queue_full",
    "rejected_quota",
    "batches",
    "peak_queue",
    "modelled_makespan_ns",
    "modelled_throughput_qps",
    "p50_ns",
    "p99_ns",
    "host_wall_ns",
    "host_throughput_qps",
    "fabric_energy_j",
];

fn check(path: &std::path::Path) -> Result<(), String> {
    let body = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    if !body.trim_start().starts_with('{') || !body.trim_end().ends_with('}') {
        return Err("snapshot is not a JSON object".into());
    }
    if !body.contains(&format!("\"schema\": \"{SCHEMA}\"")) {
        return Err(format!("snapshot does not declare schema {SCHEMA}"));
    }
    for field in REQUIRED_FIELDS {
        if !body.contains(&format!("\"{field}\":")) {
            return Err(format!("snapshot is missing required field '{field}'"));
        }
    }
    Ok(())
}

fn front_end(tiles: usize, threads: usize, config: ServeConfig) -> ServeFrontEnd {
    ServeFrontEnd {
        fabric: FabricExecutor::paper(1, tiles as u32, BatchPolicy::with_threads(threads)),
        config,
        policy: DispatchPolicy::AlwaysCim,
    }
}

/// Asserts the full determinism + conservation contract of `report`
/// against re-runs on other partitions, and certifies the tile ledgers.
fn prove_contracts(
    fe: &ServeFrontEnd,
    report: &ServeReport,
    traffic: &TrafficSpec,
    config: ServeConfig,
) {
    assert!(report.conserves(), "serve report does not conserve");
    for (tiles, threads) in [(1usize, 1usize), (2, 4)] {
        let other = front_end(tiles, threads, config)
            .serve(traffic)
            .expect("contract re-run");
        assert_eq!(
            other.checksum, report.checksum,
            "{tiles}x{threads} checksum"
        );
        assert_eq!(
            other.fabric_ledger, report.fabric_ledger,
            "{tiles}x{threads} ledger"
        );
        assert_eq!(
            other.histogram, report.histogram,
            "{tiles}x{threads} latencies"
        );
    }
    let claims: Vec<TileClaim> = report
        .tiles
        .iter()
        .map(|t| TileClaim {
            tile: t.tile,
            counts: t.counts.clone(),
            ledger: t.ledger.clone(),
        })
        .collect();
    let cert = certify_tiles(
        "serve",
        fe.fabric.prices(),
        &claims,
        &report.fabric_counts,
        &report.fabric_ledger,
    );
    assert!(cert.is_clean(), "tile certification failed:\n{cert}");
}

fn main() {
    let args = Args::capture();
    let path = repo_root_file("BENCH_serve.json");

    if args.has("--check") {
        match check(&path) {
            Ok(()) => println!("[ok] {} matches schema {SCHEMA}", path.display()),
            Err(e) => {
                eprintln!("[fail] {e}");
                std::process::exit(1);
            }
        }
        return;
    }

    let quick = args.has("--quick");
    let queries = args.numeric("--queries", if quick { 4_000 } else { 20_000 });
    let tiles = args.numeric("--tiles", 4).max(1);
    let threads = args.numeric("--threads", 4);
    let config = ServeConfig {
        queue_depth: args.numeric("--queue-depth", 256),
        tenant_quota: args.numeric("--tenant-quota", 96),
        max_batch: args.numeric("--max-batch", 64),
        mean_gap_ps: 2_000,
    };
    let traffic = TrafficSpec::sustained(queries as u64, 2015);
    let fe = front_end(tiles, threads, config);

    // Host wall clock: median of a few full serve replays.
    let samples = if quick { 3 } else { 7 };
    let mut wall: Vec<u128> = Vec::with_capacity(samples);
    let mut report = fe.serve(&traffic).expect("warm-up serve");
    for _ in 0..samples {
        let start = Instant::now();
        report = fe.serve(&traffic).expect("timed serve");
        wall.push(start.elapsed().as_nanos());
    }
    wall.sort_unstable();
    let host_wall_ns = wall[wall.len() / 2] as f64;
    let host_qps = report.completed as f64 * 1e9 / host_wall_ns;

    prove_contracts(&fe, &report, &traffic, config);

    let p50_ns = report.p50().get() * 1e9;
    let p99_ns = report.p99().get() * 1e9;
    let makespan_ns = report.makespan.get() * 1e9;
    let energy_j = report.fabric_ledger.total_energy().get();

    println!("== serving snapshot ({queries} queries, {tiles} tiles, {threads} threads) ==");
    println!(
        "admitted {:>8}   rejected {:>6} (queue) + {:>5} (quota)   batches {:>6}   peak queue {}",
        report.admitted,
        report.rejected_queue_full,
        report.rejected_quota,
        report.batches,
        report.peak_queue
    );
    println!(
        "modelled makespan  {makespan_ns:>12.1} ns   throughput {:>12.3e} q/s",
        report.throughput_qps
    );
    println!("modelled latency   p50 {p50_ns:>8.1} ns   p99 {p99_ns:>8.1} ns");
    println!("host wall          {host_wall_ns:>12.0} ns   throughput {host_qps:>12.0} q/s");
    println!("fabric energy      {energy_j:>12.3e} J   (ledger conserves bit-for-bit)");

    // The vendored serde is a no-op stub, so the snapshot is written by
    // hand; `--check` validates exactly this shape.
    let json = format!(
        "{{\n  \"schema\": \"{SCHEMA}\",\n  \"queries\": {queries},\n  \
         \"tenants\": {},\n  \"tiles\": {tiles},\n  \"threads\": {threads},\n  \
         \"queue_depth\": {},\n  \"tenant_quota\": {},\n  \"max_batch\": {},\n  \
         \"admitted\": {},\n  \"rejected_queue_full\": {},\n  \"rejected_quota\": {},\n  \
         \"batches\": {},\n  \"peak_queue\": {},\n  \
         \"modelled_makespan_ns\": {makespan_ns:.1},\n  \
         \"modelled_throughput_qps\": {:.3e},\n  \"p50_ns\": {p50_ns:.1},\n  \
         \"p99_ns\": {p99_ns:.1},\n  \"host_wall_ns\": {host_wall_ns:.0},\n  \
         \"host_throughput_qps\": {host_qps:.0},\n  \"fabric_energy_j\": {energy_j:.3e}\n}}\n",
        traffic.tenants,
        config.queue_depth,
        config.tenant_quota,
        config.max_batch,
        report.admitted,
        report.rejected_queue_full,
        report.rejected_quota,
        report.batches,
        report.peak_queue,
        report.throughput_qps,
    );
    std::fs::write(&path, &json).expect("write BENCH_serve.json");
    println!("\n[written] {}", path.display());
}
