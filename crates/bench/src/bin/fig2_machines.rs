//! Regenerates **Fig. 2** ("Traditional versus proposed architecture") as
//! the two machine descriptions with their derived totals side by side.
//!
//! ```bash
//! cargo run --release -p cim-bench --bin fig2_machines
//! ```

use cim_arch::{CimMachine, ConventionalMachine};
use cim_bench::write_csv;

fn main() {
    println!("== Fig. 2: traditional vs proposed (CIM) architecture ==\n");

    println!("┌─ traditional ────────────────────────┐   ┌─ CIM ───────────────────────────────┐");
    println!("│  cores ──► caches ──► main memory    │   │  crossbar: storage + computation    │");
    println!("│  (working set in caches; every       │   │  in the same physical location      │");
    println!("│   operand crosses the memory wall)   │   │  (working set inside the 'core')    │");
    println!(
        "└──────────────────────────────────────┘   └─────────────────────────────────────┘\n"
    );

    let mut csv = String::from(
        "machine,workload,parallel_units,area_mm2,static_w,op_latency_s,op_energy_j\n",
    );

    for (workload, conv, cim) in [
        (
            "DNA",
            ConventionalMachine::dna_paper(),
            CimMachine::dna_paper(),
        ),
        (
            "math",
            ConventionalMachine::math_paper(1_000_000),
            CimMachine::math_paper(1_000_000, 32),
        ),
    ] {
        println!("-- {workload} workload --");
        println!(
            "{:<14} {:>16} {:>14} {:>12} {:>12} {:>12}",
            "machine", "parallel units", "area", "static", "op latency", "op energy"
        );
        println!(
            "{:<14} {:>16} {:>14} {:>12} {:>12} {:>12}",
            "conventional",
            conv.parallel_units(),
            format!("{:.2} mm²", conv.area().as_square_milli_meters()),
            conv.static_power().to_string(),
            conv.op_latency().to_string(),
            conv.op_dynamic_energy().to_string()
        );
        println!(
            "{:<14} {:>16} {:>14} {:>12} {:>12} {:>12}\n",
            "CIM",
            cim.parallel_ops(),
            format!("{:.4} mm²", cim.area().as_square_milli_meters()),
            cim.static_power().to_string(),
            cim.op_latency().to_string(),
            cim.op_dynamic_energy().to_string()
        );
        csv.push_str(&format!(
            "conventional,{workload},{},{:e},{:e},{:e},{:e}\n",
            conv.parallel_units(),
            conv.area().as_square_milli_meters(),
            conv.static_power().as_watts(),
            conv.op_latency().as_seconds(),
            conv.op_dynamic_energy().as_joules()
        ));
        csv.push_str(&format!(
            "cim,{workload},{},{:e},{:e},{:e},{:e}\n",
            cim.parallel_ops(),
            cim.area().as_square_milli_meters(),
            cim.static_power().as_watts(),
            cim.op_latency().as_seconds(),
            cim.op_dynamic_energy().as_joules()
        ));
    }

    println!(
        "the three headline properties of Section III.A, from the models:\n\
         1. massive parallelism: 11.8 M in-array comparators vs 600 k CMOS ones\n\
         2. practically zero leakage: 0 W crossbar static vs ~294 W of cache leakage\n\
         3. density: the whole DNA crossbar occupies 0.015 mm² vs 172 mm² of caches"
    );
    write_csv("fig2_machines.csv", &csv);
}
