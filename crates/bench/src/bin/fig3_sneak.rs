//! Regenerates the design space behind **Fig. 3**: sneak paths in the
//! passive crossbar and the three mitigation classes (junction options ×
//! bias schemes), as read-margin-vs-size curves.
//!
//! ```bash
//! cargo run --release -p cim-bench --bin fig3_sneak
//! cargo run --release -p cim-bench --bin fig3_sneak -- --bias-sweep
//! cargo run --release -p cim-bench --bin fig3_sneak -- --threads 4
//! ```
//!
//! `--threads N` fans the solver's line relaxation over N workers
//! (0 = all cores); the results are bit-identical at any setting.

use cim_bench::{write_csv, Args};
use cim_crossbar::{
    max_readable_size, read_margin_study_threaded, BiasScheme, CrsCell, ResistiveCell,
    SelectorCell, TransistorCell, WorstCasePattern,
};
use cim_device::DeviceParams;

const SIZES: [usize; 5] = [4, 8, 16, 32, 64];

fn main() {
    let args = Args::capture();
    let threads = args.numeric("--threads", 1);
    let p = DeviceParams::table1_cim();
    let mut csv = String::from("junction,bias,n,i_one_a,i_zero_a,margin\n");

    let biases: &[BiasScheme] = if args.has("--bias-sweep") {
        &[BiasScheme::Floating, BiasScheme::HalfV, BiasScheme::ThirdV]
    } else {
        &[BiasScheme::HalfV]
    };

    println!("== Fig. 3: junction options vs sneak paths ==");
    for &bias in biases {
        println!("\n-- bias scheme: {bias} --");
        println!(
            "{:<10} {:>4} {:>12} {:>12} {:>10}",
            "junction", "n", "I(1)", "I(0)", "margin"
        );
        let studies: Vec<(&str, Vec<cim_crossbar::MarginPoint>)> = vec![
            (
                "1R",
                read_margin_study_threaded(
                    |_, _| ResistiveCell::new(p.clone()),
                    &SIZES,
                    bias,
                    WorstCasePattern::AllOnes,
                    threads,
                ),
            ),
            (
                "1S1R",
                read_margin_study_threaded(
                    |_, _| SelectorCell::new(p.clone(), 10.0, p.v_set * 0.5),
                    &SIZES,
                    bias,
                    WorstCasePattern::AllOnes,
                    threads,
                ),
            ),
            (
                "1T1R",
                read_margin_study_threaded(
                    |_, _| TransistorCell::new(p.clone()),
                    &SIZES,
                    bias,
                    WorstCasePattern::AllOnes,
                    threads,
                ),
            ),
            (
                "CRS",
                read_margin_study_threaded(
                    |_, _| CrsCell::new(p.clone()),
                    &SIZES,
                    bias,
                    WorstCasePattern::AllOnes,
                    threads,
                ),
            ),
        ];
        for (name, points) in &studies {
            for pt in points {
                println!(
                    "{name:<10} {:>4} {:>12} {:>12} {:>10.4}",
                    pt.n,
                    pt.i_one.to_string(),
                    pt.i_zero.to_string(),
                    pt.margin
                );
                csv.push_str(&format!(
                    "{name},{bias},{},{:e},{:e},{}\n",
                    pt.n,
                    pt.i_one.get(),
                    pt.i_zero.get(),
                    pt.margin
                ));
            }
            if *name == "CRS" {
                println!("{name:<10}   (CRS senses differentially: I(0) ≫ I(1) is the signal)");
            } else {
                match max_readable_size(points, 0.1) {
                    Some(n) => println!("{name:<10}   readable (margin ≥ 0.1) up to n = {n}"),
                    None => println!("{name:<10}   never readable at these sizes"),
                }
            }
        }
    }
    write_csv("fig3_sneak.csv", &csv);
}
