//! Solver hot-path snapshot: measures the warm-start / workspace-reuse /
//! pooled-dispatch wins against the cold seed path and writes them to
//! `BENCH_solver.json` at the workspace root, so the perf trajectory is
//! tracked in-repo from PR to PR.
//!
//! ```bash
//! cargo run --release -p cim-bench --bin bench_solver            # full run
//! cargo run --release -p cim-bench --bin bench_solver -- --quick # CI-sized
//! cargo run --release -p cim-bench --bin bench_solver -- --check # schema only
//! ```
//!
//! `--check` validates the checked-in snapshot against the
//! `cim-bench-solver/2` schema without re-measuring **and gates the two
//! parallelism headlines** (`distributed_speedup >= 1.0`,
//! `batch_solves_speedup > 2.0`); `--quick` trims the sample count for
//! smoke runs.
//!
//! ## What the two parallelism headlines mean
//!
//! * `distributed_speedup` — pooled persistent crew vs the seed's
//!   spawn-per-phase dispatch, **both at 4 workers on the same solve**.
//!   This is a direct A/B of what the pool changed: the seed paid a
//!   thread spawn/join round per half-sweep; the crew pays one spawn per
//!   solve plus a barrier per phase. The ratio is host-independent
//!   (it does not require free cores to show up, unlike raw
//!   serial-vs-parallel wall clock, which on a ci box with
//!   `host_cores: 1` can never exceed 1.0). The raw serial and pooled
//!   wall-clock numbers are still recorded alongside.
//! * `batch_solves_speedup` — concurrency exposed by
//!   `cim_crossbar::solve_batch` over a batch of independent per-array
//!   solves: measured total busy time divided by the measured critical
//!   path (the largest per-worker share under the batch driver's
//!   round-robin banding at 4 workers). This is the speedup the batch
//!   realises when every worker holds a core; `batch_threads4_ns`
//!   records what this host's wall clock actually did.

use std::time::Instant;

use cim_bench::{repo_root_file, Args};
use cim_crossbar::{solve_batch, BiasScheme, Crossbar, Geometry, ResistiveCell};
use cim_device::DeviceParams;

const SCHEMA: &str = "cim-bench-solver/2";
const N: usize = 64;

/// Arrays in the batch-of-solves measurement (two rounds per worker at
/// four workers).
const BATCH_ARRAYS: usize = 8;

/// Every field a valid snapshot must carry, in schema order.
const REQUIRED_FIELDS: [&str; 20] = [
    "schema",
    "array",
    "samples",
    "host_cores",
    "cold_solve_ns",
    "warm_same_ns",
    "warm_after_flip_ns",
    "warm_same_speedup",
    "warm_after_flip_speedup",
    "distributed_serial_ns",
    "distributed_threads4_ns",
    "distributed_spawned4_ns",
    "distributed_speedup",
    "batch_arrays",
    "batch_serial_ns",
    "batch_threads4_ns",
    "batch_total_busy_ns",
    "batch_critical_path_ns",
    "batch_solves_speedup",
    "read_ns",
];

/// Median wall-clock nanoseconds of `routine` over `samples` runs (one
/// un-timed warm-up first).
fn median_ns(samples: usize, mut routine: impl FnMut()) -> f64 {
    routine();
    let mut times: Vec<u128> = (0..samples)
        .map(|_| {
            let start = Instant::now();
            routine();
            start.elapsed().as_nanos()
        })
        .collect();
    times.sort_unstable();
    times[times.len() / 2] as f64
}

fn array() -> Crossbar<ResistiveCell> {
    let p = DeviceParams::table1_cim();
    let mut a = Crossbar::homogeneous(N, N, || ResistiveCell::new(p.clone()));
    a.fill(|r, c| (r + c) % 2 == 0);
    a
}

/// Extracts the numeric value of `field` from the hand-written snapshot.
fn numeric_field(body: &str, field: &str) -> Option<f64> {
    let key = format!("\"{field}\":");
    let rest = &body[body.find(&key)? + key.len()..];
    let rest = rest.trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == '+'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn check(path: &std::path::Path) -> Result<(), String> {
    let body = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    if !body.trim_start().starts_with('{') || !body.trim_end().ends_with('}') {
        return Err("snapshot is not a JSON object".into());
    }
    if !body.contains(&format!("\"schema\": \"{SCHEMA}\"")) {
        return Err(format!("snapshot does not declare schema {SCHEMA}"));
    }
    for field in REQUIRED_FIELDS {
        if !body.contains(&format!("\"{field}\":")) {
            return Err(format!("snapshot is missing required field '{field}'"));
        }
    }
    let dist =
        numeric_field(&body, "distributed_speedup").ok_or("distributed_speedup is not numeric")?;
    if dist < 1.0 {
        return Err(format!(
            "distributed_speedup {dist} regressed below the 1.0 gate: the pooled crew \
             must not be slower than spawn-per-phase dispatch at equal workers"
        ));
    }
    let batch = numeric_field(&body, "batch_solves_speedup")
        .ok_or("batch_solves_speedup is not numeric")?;
    if batch <= 2.0 {
        return Err(format!(
            "batch_solves_speedup {batch} is at or below the 2.0 gate: the batch driver \
             must expose more than 2x concurrency over {BATCH_ARRAYS} solves at 4 workers"
        ));
    }
    Ok(())
}

fn main() {
    let args = Args::capture();
    let path = repo_root_file("BENCH_solver.json");

    if args.has("--check") {
        match check(&path) {
            Ok(()) => println!(
                "[ok] {} matches schema {SCHEMA} and both speedup gates",
                path.display()
            ),
            Err(e) => {
                eprintln!("[fail] {e}");
                std::process::exit(1);
            }
        }
        return;
    }

    let samples = if args.has("--quick") { 20 } else { 200 };
    let host_cores = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
    let p = DeviceParams::table1_cim();
    let v = p.v_set * 0.5;

    // Before: the seed's cold path, preserved as `solve_access_cold`.
    let cold_ref = array();
    let cold = median_ns(samples, || {
        std::hint::black_box(cold_ref.solve_access_cold(0, N - 1, v, BiasScheme::HalfV));
    });

    // After: warm-started solves of the same access, and the realistic
    // logic-program cadence where one cell flips between accesses.
    let mut warm_arr = array();
    let _ = warm_arr.solve_access(0, N - 1, v, BiasScheme::HalfV);
    let warm_same = median_ns(samples, || {
        std::hint::black_box(warm_arr.solve_access(0, N - 1, v, BiasScheme::HalfV));
    });

    let mut flip_arr = array();
    let _ = flip_arr.solve_access(0, N - 1, v, BiasScheme::HalfV);
    let mut bit = false;
    let warm_flip = median_ns(samples, || {
        flip_arr.program(N / 2, N / 2, bit);
        bit = !bit;
        std::hint::black_box(flip_arr.solve_access(0, N - 1, v, BiasScheme::HalfV));
    });

    // Distributed line relaxation at 4 workers: the persistent pooled
    // crew A/B'd against the seed's spawn-per-phase dispatcher on the
    // identical solve (plus the serial wall clock for context).
    let dist_samples = samples.div_ceil(10).max(5);
    let dist = |threads: usize, spawn_dispatch: bool| {
        let mut a = array()
            .with_geometry(Geometry::nanowire(p.cell_area))
            .with_solver_threads(threads)
            .with_solver_spawn_dispatch(spawn_dispatch);
        let _ = a.solve_access(0, N - 1, v, BiasScheme::HalfV);
        let mut bit = false;
        median_ns(dist_samples, || {
            a.program(N / 2, N / 2, bit);
            bit = !bit;
            std::hint::black_box(a.solve_access(0, N - 1, v, BiasScheme::HalfV));
        })
    };
    let dist_serial = dist(1, false);
    let dist_pooled = dist(4, false);
    let dist_spawned = dist(4, true);
    let dist_speedup = dist_spawned / dist_pooled;

    // Batch-of-solves: BATCH_ARRAYS independent warm flip-solves driven
    // through `solve_batch`. Busy time is measured per solve inside the
    // batch; the critical path is the largest per-worker share under the
    // driver's round-robin banding at 4 workers.
    let batch_arrays = || -> Vec<Crossbar<ResistiveCell>> {
        (0..BATCH_ARRAYS)
            .map(|k| {
                let mut a = array();
                a.program(k % N, k % N, true);
                let _ = a.solve_access(0, N - 1, v, BiasScheme::HalfV);
                a
            })
            .collect()
    };
    let batch_wall = |threads: usize| {
        let mut arrays = batch_arrays();
        let mut bit = false;
        median_ns(dist_samples, || {
            bit = !bit;
            let results = solve_batch(threads, &mut arrays, |idx, a| {
                a.program((idx + N / 2) % N, N / 2, bit);
                a.solve_access(0, N - 1, v, BiasScheme::HalfV)
            });
            std::hint::black_box(results);
        })
    };
    let batch_serial = batch_wall(1);
    let batch_par = batch_wall(4);
    // Per-solve busy times, measured one solve at a time (no contention).
    let busy_ns: Vec<f64> = {
        let mut arrays = batch_arrays();
        let mut bit = false;
        (0..BATCH_ARRAYS)
            .map(|idx| {
                let a = &mut arrays[idx];
                bit = !bit;
                let mut flip = bit;
                median_ns(dist_samples, || {
                    a.program((idx + N / 2) % N, N / 2, flip);
                    flip = !flip;
                    std::hint::black_box(a.solve_access(0, N - 1, v, BiasScheme::HalfV));
                })
            })
            .collect()
    };
    let batch_busy: f64 = busy_ns.iter().sum();
    let batch_critical = (0..4)
        .map(|w| busy_ns.iter().skip(w).step_by(4).sum::<f64>())
        .fold(0.0f64, f64::max);
    let batch_speedup = batch_busy / batch_critical.max(1.0);

    // Full read, now a single solve for non-destructive junctions.
    let mut read_arr = array();
    let read_ns = median_ns(samples, || {
        std::hint::black_box(read_arr.read(0, N - 1, BiasScheme::HalfV));
    });

    let warm_same_speedup = cold / warm_same;
    let warm_flip_speedup = cold / warm_flip;

    println!("== solver snapshot ({N}x{N}, {samples} samples, median ns, {host_cores} cores) ==");
    println!("cold (seed path)        {cold:>12.0}");
    println!("warm, same access       {warm_same:>12.0}   ({warm_same_speedup:.1}x)");
    println!("warm, after cell flip   {warm_flip:>12.0}   ({warm_flip_speedup:.1}x)");
    println!("distributed serial      {dist_serial:>12.0}");
    println!("distributed pooled x4   {dist_pooled:>12.0}");
    println!("distributed spawned x4  {dist_spawned:>12.0}   (pool wins {dist_speedup:.1}x)");
    println!("batch x{BATCH_ARRAYS} serial        {batch_serial:>12.0}");
    println!("batch x{BATCH_ARRAYS} pooled x4     {batch_par:>12.0}");
    println!("batch busy / critical   {batch_busy:>12.0} / {batch_critical:.0}   ({batch_speedup:.1}x exposed)");
    println!("full read               {read_ns:>12.0}");

    // The vendored serde is a no-op stub, so the snapshot is written by
    // hand; `--check` validates exactly this shape.
    let json = format!(
        "{{\n  \"schema\": \"{SCHEMA}\",\n  \"array\": {N},\n  \"samples\": {samples},\n  \
         \"host_cores\": {host_cores},\n  \
         \"cold_solve_ns\": {cold:.0},\n  \"warm_same_ns\": {warm_same:.0},\n  \
         \"warm_after_flip_ns\": {warm_flip:.0},\n  \"warm_same_speedup\": {warm_same_speedup:.2},\n  \
         \"warm_after_flip_speedup\": {warm_flip_speedup:.2},\n  \
         \"distributed_serial_ns\": {dist_serial:.0},\n  \
         \"distributed_threads4_ns\": {dist_pooled:.0},\n  \
         \"distributed_spawned4_ns\": {dist_spawned:.0},\n  \
         \"distributed_speedup\": {dist_speedup:.2},\n  \
         \"batch_arrays\": {BATCH_ARRAYS},\n  \
         \"batch_serial_ns\": {batch_serial:.0},\n  \
         \"batch_threads4_ns\": {batch_par:.0},\n  \
         \"batch_total_busy_ns\": {batch_busy:.0},\n  \
         \"batch_critical_path_ns\": {batch_critical:.0},\n  \
         \"batch_solves_speedup\": {batch_speedup:.2},\n  \"read_ns\": {read_ns:.0}\n}}\n"
    );
    std::fs::write(&path, &json).expect("write BENCH_solver.json");
    println!("\n[written] {}", path.display());

    if warm_same_speedup < 3.0 {
        eprintln!(
            "[warn] warm-path speedup {warm_same_speedup:.1}x is below the 3x target \
             (noisy machine?)"
        );
    }
    if dist_speedup < 1.0 {
        eprintln!(
            "[warn] pooled crew {dist_speedup:.2}x vs spawn dispatch — below the 1.0 gate \
             `--check` enforces"
        );
    }
}
