//! Solver hot-path snapshot: measures the warm-start / workspace-reuse /
//! parallel-relaxation wins against the cold seed path and writes them to
//! `BENCH_solver.json` at the workspace root, so the perf trajectory is
//! tracked in-repo from PR to PR.
//!
//! ```bash
//! cargo run --release -p cim-bench --bin bench_solver            # full run
//! cargo run --release -p cim-bench --bin bench_solver -- --quick # CI-sized
//! cargo run --release -p cim-bench --bin bench_solver -- --check # schema only
//! ```
//!
//! `--check` validates the checked-in snapshot against the
//! `cim-bench-solver/1` schema without re-measuring (used by CI so the
//! snapshot can't rot); `--quick` trims the sample count for smoke runs.

use std::time::Instant;

use cim_bench::{repo_root_file, Args};
use cim_crossbar::{BiasScheme, Crossbar, Geometry, ResistiveCell};
use cim_device::DeviceParams;

const SCHEMA: &str = "cim-bench-solver/1";
const N: usize = 64;

/// Every field a valid snapshot must carry, in schema order.
const REQUIRED_FIELDS: [&str; 12] = [
    "schema",
    "array",
    "samples",
    "cold_solve_ns",
    "warm_same_ns",
    "warm_after_flip_ns",
    "warm_same_speedup",
    "warm_after_flip_speedup",
    "distributed_serial_ns",
    "distributed_threads4_ns",
    "distributed_speedup",
    "read_ns",
];

/// Median wall-clock nanoseconds of `routine` over `samples` runs (one
/// un-timed warm-up first).
fn median_ns(samples: usize, mut routine: impl FnMut()) -> f64 {
    routine();
    let mut times: Vec<u128> = (0..samples)
        .map(|_| {
            let start = Instant::now();
            routine();
            start.elapsed().as_nanos()
        })
        .collect();
    times.sort_unstable();
    times[times.len() / 2] as f64
}

fn array() -> Crossbar<ResistiveCell> {
    let p = DeviceParams::table1_cim();
    let mut a = Crossbar::homogeneous(N, N, || ResistiveCell::new(p.clone()));
    a.fill(|r, c| (r + c) % 2 == 0);
    a
}

fn check(path: &std::path::Path) -> Result<(), String> {
    let body = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    if !body.trim_start().starts_with('{') || !body.trim_end().ends_with('}') {
        return Err("snapshot is not a JSON object".into());
    }
    if !body.contains(&format!("\"schema\": \"{SCHEMA}\"")) {
        return Err(format!("snapshot does not declare schema {SCHEMA}"));
    }
    for field in REQUIRED_FIELDS {
        if !body.contains(&format!("\"{field}\":")) {
            return Err(format!("snapshot is missing required field '{field}'"));
        }
    }
    Ok(())
}

fn main() {
    let args = Args::capture();
    let path = repo_root_file("BENCH_solver.json");

    if args.has("--check") {
        match check(&path) {
            Ok(()) => println!("[ok] {} matches schema {SCHEMA}", path.display()),
            Err(e) => {
                eprintln!("[fail] {e}");
                std::process::exit(1);
            }
        }
        return;
    }

    let samples = if args.has("--quick") { 20 } else { 200 };
    let p = DeviceParams::table1_cim();
    let v = p.v_set * 0.5;

    // Before: the seed's cold path, preserved as `solve_access_cold`.
    let cold_ref = array();
    let cold = median_ns(samples, || {
        std::hint::black_box(cold_ref.solve_access_cold(0, N - 1, v, BiasScheme::HalfV));
    });

    // After: warm-started solves of the same access, and the realistic
    // logic-program cadence where one cell flips between accesses.
    let mut warm_arr = array();
    let _ = warm_arr.solve_access(0, N - 1, v, BiasScheme::HalfV);
    let warm_same = median_ns(samples, || {
        std::hint::black_box(warm_arr.solve_access(0, N - 1, v, BiasScheme::HalfV));
    });

    let mut flip_arr = array();
    let _ = flip_arr.solve_access(0, N - 1, v, BiasScheme::HalfV);
    let mut bit = false;
    let warm_flip = median_ns(samples, || {
        flip_arr.program(N / 2, N / 2, bit);
        bit = !bit;
        std::hint::black_box(flip_arr.solve_access(0, N - 1, v, BiasScheme::HalfV));
    });

    // Distributed line relaxation: serial vs 4 deterministic workers.
    let dist_samples = samples.div_ceil(10).max(5);
    let dist = |threads: usize| {
        let mut a = array()
            .with_geometry(Geometry::nanowire(p.cell_area))
            .with_solver_threads(threads);
        let _ = a.solve_access(0, N - 1, v, BiasScheme::HalfV);
        let mut bit = false;
        median_ns(dist_samples, || {
            a.program(N / 2, N / 2, bit);
            bit = !bit;
            std::hint::black_box(a.solve_access(0, N - 1, v, BiasScheme::HalfV));
        })
    };
    let dist_serial = dist(1);
    let dist_par = dist(4);

    // Full read, now a single solve for non-destructive junctions.
    let mut read_arr = array();
    let read_ns = median_ns(samples, || {
        std::hint::black_box(read_arr.read(0, N - 1, BiasScheme::HalfV));
    });

    let warm_same_speedup = cold / warm_same;
    let warm_flip_speedup = cold / warm_flip;
    let dist_speedup = dist_serial / dist_par;

    println!("== solver snapshot ({N}x{N}, {samples} samples, median ns) ==");
    println!("cold (seed path)        {cold:>12.0}");
    println!("warm, same access       {warm_same:>12.0}   ({warm_same_speedup:.1}x)");
    println!("warm, after cell flip   {warm_flip:>12.0}   ({warm_flip_speedup:.1}x)");
    println!("distributed serial      {dist_serial:>12.0}");
    println!("distributed 4 threads   {dist_par:>12.0}   ({dist_speedup:.1}x)");
    println!("full read               {read_ns:>12.0}");

    // The vendored serde is a no-op stub, so the snapshot is written by
    // hand; `--check` validates exactly this shape.
    let json = format!(
        "{{\n  \"schema\": \"{SCHEMA}\",\n  \"array\": {N},\n  \"samples\": {samples},\n  \
         \"cold_solve_ns\": {cold:.0},\n  \"warm_same_ns\": {warm_same:.0},\n  \
         \"warm_after_flip_ns\": {warm_flip:.0},\n  \"warm_same_speedup\": {warm_same_speedup:.2},\n  \
         \"warm_after_flip_speedup\": {warm_flip_speedup:.2},\n  \
         \"distributed_serial_ns\": {dist_serial:.0},\n  \
         \"distributed_threads4_ns\": {dist_par:.0},\n  \
         \"distributed_speedup\": {dist_speedup:.2},\n  \"read_ns\": {read_ns:.0}\n}}\n"
    );
    std::fs::write(&path, &json).expect("write BENCH_solver.json");
    println!("\n[written] {}", path.display());

    if warm_same_speedup < 3.0 {
        eprintln!(
            "[warn] warm-path speedup {warm_same_speedup:.1}x is below the 3x target \
             (noisy machine?)"
        );
    }
}
