//! Hybrid-dispatch snapshot: scores the certificate-driven dispatcher
//! against both pure policies and the offline oracle on the shipped
//! workload mix, measures the split-dispatch speedup of running both
//! machines concurrently on one workload, and writes the comparison to
//! `BENCH_dispatch.json` at the workspace root.
//!
//! ```bash
//! cargo run --release -p cim-bench --bin bench_dispatch              # full run
//! cargo run --release -p cim-bench --bin bench_dispatch -- --quick   # CI-sized
//! cargo run --release -p cim-bench --bin bench_dispatch -- --check   # schema + gate
//! cargo run --release -p cim-bench --bin bench_dispatch -- --objective edp
//! cargo run --release -p cim-bench --bin bench_dispatch -- --calibration cal.txt
//! ```
//!
//! Three whole-workload scenarios, each scored four ways under one
//! objective (lower is better): route everything to the crossbar
//! (`always_cim`), route everything to the conventional host
//! (`always_host`), let the certificate-driven dispatcher choose
//! (`hybrid`), and the offline oracle (per-unit best of both machines
//! with perfect hindsight).
//!
//! The **split scenario** pins both machines at a fixed capacity and
//! partitions one addition stream between them with a makespan-balanced
//! [`cim_units::SplitPlan`], running the shards
//! concurrently: `split_speedup` is the best whole-workload makespan
//! (either machine solo — the whole-workload hybrid picks one of them)
//! divided by the split makespan, and `--check` gates it at ≥ 1.1×.
//!
//! `--calibration <path>` carries calibrator state across sessions: the
//! file is loaded before the run when it exists (exact dyadic
//! round-trip; see `cim_dispatch::Calibrator::save`) and rewritten
//! after.
//!
//! Every run re-proves the dispatch contracts before writing the
//! snapshot: decision traces and split outcomes are bit-identical
//! across thread counts, one-sided split plans reproduce the solo runs
//! exactly, the split claim certifies clean, the hybrid lands within 5%
//! of the oracle, and each pure policy loses at least one scenario.

use cim_bench::{repo_root_file, Args};
use cim_dispatch::{split_claim, Calibrator, HybridExecutor};
use cim_fabric::{
    DispatchPolicy, FabricExecutor, ServeConfig, ServeFrontEnd, ServeReport, TrafficSpec,
};
use cim_sim::{BatchPolicy, CimExecutor, ConventionalExecutor, ExecutionBackend, RunOutcome};
use cim_units::{DispatchObjective, Energy, SplitPlan, Time};
use cim_workloads::{AdditionWorkload, DnaWorkload, Shardable};

const SCHEMA: &str = "cim-bench-dispatch/2";

/// The `--check` gate on the measured split speedup: splitting one
/// workload across both machines must beat the best whole-workload
/// policy by at least this factor.
const SPLIT_SPEEDUP_GATE: f64 = 1.1;

/// Every field a valid snapshot must carry, in schema order.
const REQUIRED_FIELDS: [&str; 22] = [
    "schema",
    "objective",
    "calibration",
    "dna_hybrid",
    "dna_always_cim",
    "dna_always_host",
    "dna_oracle",
    "additions_hybrid",
    "additions_always_cim",
    "additions_always_host",
    "additions_oracle",
    "serve_hybrid",
    "serve_always_cim",
    "serve_always_host",
    "serve_oracle",
    "split_cim_units",
    "split_host_units",
    "split_makespan_ps",
    "split_whole_best_ps",
    "split_speedup",
    "decisions",
    "mispredictions",
];

fn check(path: &std::path::Path) -> Result<(), String> {
    let body = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    if !body.trim_start().starts_with('{') || !body.trim_end().ends_with('}') {
        return Err("snapshot is not a JSON object".into());
    }
    if !body.contains(&format!("\"schema\": \"{SCHEMA}\"")) {
        return Err(format!("snapshot does not declare schema {SCHEMA}"));
    }
    for field in REQUIRED_FIELDS {
        if !body.contains(&format!("\"{field}\":")) {
            return Err(format!("snapshot is missing required field '{field}'"));
        }
    }
    // The split gate is numeric, not just present: parse the value and
    // require the measured concurrency win.
    let needle = "\"split_speedup\":";
    let start = body.find(needle).expect("field presence checked above") + needle.len();
    let token: String = body[start..]
        .trim_start()
        .chars()
        .take_while(|c| !matches!(c, ',' | '}') && !c.is_whitespace())
        .collect();
    let speedup: f64 = token
        .parse()
        .map_err(|e| format!("split_speedup `{token}` is not a number: {e}"))?;
    if speedup < SPLIT_SPEEDUP_GATE {
        return Err(format!(
            "split_speedup {speedup:.4} is below the {SPLIT_SPEEDUP_GATE}x gate"
        ));
    }
    Ok(())
}

/// Strict objective flag: absent → energy, present-but-garbage → exit 2.
fn objective_flag(args: &Args) -> DispatchObjective {
    match args.value("--objective") {
        None => DispatchObjective::Energy,
        Some(raw) => DispatchObjective::parse(raw).unwrap_or_else(|| {
            eprintln!("error: --objective expects energy|makespan|energy_delay|edp, got `{raw}`");
            std::process::exit(2);
        }),
    }
}

/// Strict calibration flag: absent → no persistence, present without a
/// path → exit 2.
fn calibration_flag(args: &Args) -> Option<std::path::PathBuf> {
    if !args.has("--calibration") {
        return None;
    }
    let Some(raw) = args.value("--calibration") else {
        eprintln!("error: --calibration expects a file path");
        std::process::exit(2);
    };
    Some(std::path::PathBuf::from(raw))
}

/// The four scores of one scenario, all under the same objective.
struct Scenario {
    name: &'static str,
    hybrid: f64,
    always_cim: f64,
    always_host: f64,
    oracle: f64,
}

fn hybrid_executor(
    threads: usize,
    objective: DispatchObjective,
    calibrator: Calibrator,
) -> HybridExecutor<CimExecutor, ConventionalExecutor> {
    let policy = BatchPolicy::with_threads(threads);
    HybridExecutor::with_calibrator(
        CimExecutor::with_batch(policy),
        ConventionalExecutor::with_batch(policy),
        objective,
        calibrator,
    )
}

/// Scores one whole-workload scenario: both machines run solo (the
/// pure policies *and* the oracle's two candidates), the hybrid runs
/// through its frozen dispatcher.
fn executor_scenario<W>(
    name: &'static str,
    workload: &W,
    threads: usize,
    objective: DispatchObjective,
    hybrid: &mut HybridExecutor<CimExecutor, ConventionalExecutor>,
) -> Scenario
where
    W: cim_workloads::Workload,
    CimExecutor: ExecutionBackend<W>,
    ConventionalExecutor: ExecutionBackend<W>,
{
    let policy = BatchPolicy::with_threads(threads);
    let score = |outcome: &cim_sim::RunOutcome| {
        objective.score(outcome.ledger.total_energy(), outcome.ledger.total_time())
    };
    let cim = CimExecutor::with_batch(policy)
        .run(workload)
        .expect("cim run");
    let host = ConventionalExecutor::with_batch(policy)
        .run(workload)
        .expect("host run");
    let dispatched = hybrid.dispatch(workload).expect("hybrid dispatch");
    let always_cim = score(&cim);
    let always_host = score(&host);
    Scenario {
        name,
        hybrid: score(&dispatched),
        always_cim,
        always_host,
        oracle: always_cim.min(always_host),
    }
}

fn front_end(policy: DispatchPolicy, tiles: u32, threads: usize) -> ServeFrontEnd {
    ServeFrontEnd {
        fabric: FabricExecutor::paper(1, tiles, BatchPolicy::with_threads(threads)),
        config: ServeConfig::sustained(),
        policy,
    }
}

/// A serve report's score under `objective`: total energy across both
/// machines' ledgers, against the modelled makespan.
fn serve_score(report: &ServeReport, objective: DispatchObjective) -> f64 {
    let energy = Energy::new(
        report.fabric_ledger.total_energy().get() + report.host_ledger.total_energy().get(),
    );
    objective.score(energy, report.makespan)
}

/// Scores the serving scenario under all three policies. The per-query
/// oracle *is* the identity-calibrated hybrid route table (each query
/// kind goes to the machine whose true prices score it lower), so the
/// oracle column equals the hybrid one by construction.
fn serve_scenario(
    traffic: &TrafficSpec,
    threads: usize,
    objective: DispatchObjective,
) -> (Scenario, ServeReport) {
    let hybrid_report = front_end(DispatchPolicy::hybrid(objective), 4, threads)
        .serve(traffic)
        .expect("hybrid serve");
    let cim_report = front_end(DispatchPolicy::AlwaysCim, 4, threads)
        .serve(traffic)
        .expect("always-cim serve");
    let host_report = front_end(DispatchPolicy::AlwaysHost, 4, threads)
        .serve(traffic)
        .expect("always-host serve");
    let hybrid = serve_score(&hybrid_report, objective);
    (
        Scenario {
            name: "serve",
            hybrid,
            always_cim: serve_score(&cim_report, objective),
            always_host: serve_score(&host_report, objective),
            oracle: hybrid,
        },
        hybrid_report,
    )
}

/// What the split scenario measured.
struct SplitBench {
    plan: SplitPlan,
    split_makespan: Time,
    whole_best: Time,
    speedup: f64,
}

/// Measures the split-dispatch win at a fixed machine capacity: the
/// workload's unit stream is partitioned by the makespan-balanced plan
/// and both shards run concurrently, against the best *whole*-workload
/// makespan (either machine solo at the same capacity; the
/// whole-workload hybrid routes to one of exactly these two, so the
/// minimum covers all three baselines).
fn split_scenario(adds: &AdditionWorkload, capacity: u64, threads: usize) -> SplitBench {
    let executor = hybrid_executor(threads, DispatchObjective::Makespan, Calibrator::frozen());
    let outcome = executor
        .dispatch_split(adds, capacity)
        .expect("split dispatch");
    let units = adds.units();
    let whole = adds.shard(0, units, capacity);
    let cim_whole = ExecutionBackend::run(&executor.cim, &whole).expect("cim whole");
    let host_whole = ExecutionBackend::run(&executor.host, &whole).expect("host whole");
    // Same answer however the stream is partitioned.
    assert_eq!(outcome.checksum(), cim_whole.digest.checksum);
    assert_eq!(outcome.checksum(), host_whole.digest.checksum);
    assert_eq!(outcome.operations(), units);
    let whole_best = cim_whole
        .ledger
        .total_time()
        .min(host_whole.ledger.total_time());
    let split_makespan = outcome.makespan();
    SplitBench {
        plan: outcome.plan,
        split_makespan,
        whole_best,
        speedup: whole_best.get() / split_makespan.get(),
    }
}

/// Asserts the split-dispatch contracts: outcomes are bit-identical
/// across thread counts, one-sided plans reproduce the solo shard runs
/// exactly, and the split claim certifies clean under `certify_split`.
fn prove_split_contracts(adds: &AdditionWorkload, capacity: u64) {
    let reference = hybrid_executor(1, DispatchObjective::Makespan, Calibrator::frozen());
    let plan = reference.split_plan(adds, capacity);
    let reference_outcome = reference
        .run_split(adds, capacity, &plan)
        .expect("reference split");
    for threads in [2usize, 4] {
        let other = hybrid_executor(threads, DispatchObjective::Makespan, Calibrator::frozen());
        assert_eq!(
            other.split_plan(adds, capacity),
            plan,
            "split plan differs at {threads} threads"
        );
        let outcome = other
            .run_split(adds, capacity, &plan)
            .expect("split re-run");
        assert_eq!(
            outcome.ledger, reference_outcome.ledger,
            "split ledger differs at {threads} threads"
        );
        assert_eq!(outcome.checksum(), reference_outcome.checksum());
        assert_eq!(outcome.makespan(), reference_outcome.makespan());
    }
    // One-sided plans are the solo runs, bit for bit.
    let units = adds.units();
    let whole = adds.shard(0, units, capacity);
    let all_cim = SplitPlan::all_cim(units, plan.cim_score(), plan.host_score());
    let one_sided = reference
        .run_split(adds, capacity, &all_cim)
        .expect("all-cim split");
    let solo: RunOutcome = ExecutionBackend::run(&reference.cim, &whole).expect("solo cim");
    assert_eq!(one_sided.cim.as_ref(), Some(&solo), "all-cim != solo cim");
    let all_host = SplitPlan::all_host(units, plan.cim_score(), plan.host_score());
    let one_sided = reference
        .run_split(adds, capacity, &all_host)
        .expect("all-host split");
    let solo: RunOutcome = ExecutionBackend::run(&reference.host, &whole).expect("solo host");
    assert_eq!(
        one_sided.host.as_ref(),
        Some(&solo),
        "all-host != solo host"
    );
    // The decision itself certifies: shard estimates, calibration
    // scales, and the combined ledger re-derive cell-bitwise.
    let cim_estimate = reference
        .cim
        .estimate(&adds.shard(0, plan.cim_units(), capacity));
    let host_estimate =
        reference
            .host
            .estimate(&adds.shard(plan.cim_units(), plan.host_units(), capacity));
    let claim = split_claim(
        &plan,
        &cim_estimate,
        &host_estimate,
        reference.calibrator().cim_scales(),
        reference.calibrator().host_scales(),
    );
    assert!(
        cim_verify::certify_split("bench-split", &claim).is_clean(),
        "split claim does not certify"
    );
}

/// Asserts the dispatch contracts: the decision trace is bit-identical
/// across thread counts, serve results are thread-count independent
/// under the hybrid policy, the hybrid lands within 5% of the offline
/// oracle everywhere, and each pure policy loses at least one scenario.
fn prove_contracts(
    scenarios: &[Scenario],
    dna: &DnaWorkload,
    adds: &AdditionWorkload,
    traffic: &TrafficSpec,
    objective: DispatchObjective,
    hybrid_serve: &ServeReport,
) {
    let mut reference = hybrid_executor(1, objective, Calibrator::frozen());
    reference.dispatch(dna).expect("reference dna");
    reference.dispatch(adds).expect("reference adds");
    for threads in [2usize, 4] {
        let mut other = hybrid_executor(threads, objective, Calibrator::frozen());
        other.dispatch(dna).expect("re-run dna");
        other.dispatch(adds).expect("re-run adds");
        assert_eq!(
            other.trace(),
            reference.trace(),
            "dispatch trace differs at {threads} threads"
        );
    }
    for (tiles, threads) in [(1u32, 1usize), (2, 4)] {
        let other = front_end(DispatchPolicy::hybrid(objective), tiles, threads)
            .serve(traffic)
            .expect("serve re-run");
        assert_eq!(
            other.checksum, hybrid_serve.checksum,
            "{tiles}x{threads} hybrid serve checksum"
        );
        assert_eq!(
            (other.cim_queries, other.host_queries, other.mispredictions),
            (
                hybrid_serve.cim_queries,
                hybrid_serve.host_queries,
                hybrid_serve.mispredictions
            ),
            "{tiles}x{threads} hybrid serve routing"
        );
    }
    assert!(hybrid_serve.conserves(), "hybrid serve does not conserve");
    for s in scenarios {
        assert!(
            s.hybrid <= s.oracle * 1.05,
            "{}: hybrid {:.4e} misses the oracle {:.4e} by more than 5%",
            s.name,
            s.hybrid,
            s.oracle
        );
    }
    assert!(
        scenarios.iter().any(|s| s.always_cim > s.hybrid),
        "always-cim never loses a scenario; the dispatcher is pointless"
    );
    assert!(
        scenarios.iter().any(|s| s.always_host > s.hybrid),
        "always-host never loses a scenario; the dispatcher is pointless"
    );
}

fn main() {
    let args = Args::capture();
    let path = repo_root_file("BENCH_dispatch.json");

    if args.has("--check") {
        match check(&path) {
            Ok(()) => println!(
                "[ok] {} matches schema {SCHEMA} (split_speedup >= {SPLIT_SPEEDUP_GATE})",
                path.display()
            ),
            Err(e) => {
                eprintln!("[fail] {e}");
                std::process::exit(1);
            }
        }
        return;
    }

    let quick = args.has("--quick");
    let objective = objective_flag(&args);
    let calibration = calibration_flag(&args);
    let threads = args.numeric("--threads", 4);
    let ref_len = args.numeric("--ref-len", if quick { 1 << 12 } else { 1 << 14 });
    let n_ops = args.numeric("--ops", if quick { 1 << 12 } else { 1 << 14 });
    let queries = args.numeric("--queries", if quick { 4_000 } else { 16_000 });
    // The split scenario's stream and the fixed machine capacity both
    // shards are priced at; quick keeps the full run's 32:1 ratio.
    let split_ops = args.numeric("--split-ops", if quick { 1 << 14 } else { 1 << 21 });
    let split_capacity = args.numeric("--split-capacity", if quick { 1 << 9 } else { 1 << 16 });

    let calibrator = match &calibration {
        Some(path) if path.exists() => Calibrator::load(path).unwrap_or_else(|e| {
            eprintln!("error: cannot load calibrator from {}: {e}", path.display());
            std::process::exit(2);
        }),
        _ => Calibrator::frozen(),
    };

    let dna = DnaWorkload::scaled(ref_len as u64, 64);
    let adds = AdditionWorkload::scaled(n_ops as u64, 7);
    let split_adds = AdditionWorkload::scaled(split_ops as u64, 7);
    let traffic = TrafficSpec::sustained(queries as u64, 2015);

    let mut hybrid = hybrid_executor(threads, objective, calibrator);
    let dna_scenario = executor_scenario("dna", &dna, threads, objective, &mut hybrid);
    let adds_scenario = executor_scenario("additions", &adds, threads, objective, &mut hybrid);
    let (serve, hybrid_serve) = serve_scenario(&traffic, threads, objective);
    let split = split_scenario(&split_adds, split_capacity as u64, threads);
    let decisions = hybrid.trace().len() as u64 + hybrid_serve.completed;
    let mispredictions = hybrid.trace().mispredictions() + hybrid_serve.mispredictions;
    let scenarios = [dna_scenario, adds_scenario, serve];

    prove_contracts(&scenarios, &dna, &adds, &traffic, objective, &hybrid_serve);
    prove_split_contracts(&split_adds, split_capacity as u64);

    if let Some(path) = &calibration {
        hybrid.calibrator().save(path).unwrap_or_else(|e| {
            eprintln!("error: cannot save calibrator to {}: {e}", path.display());
            std::process::exit(1);
        });
        println!("[calibration] saved to {}", path.display());
    }

    println!("== dispatch snapshot (objective {objective}, {threads} threads) ==");
    println!(
        "{:<10} {:>14} {:>14} {:>14} {:>14}",
        "scenario", "hybrid", "always_cim", "always_host", "oracle"
    );
    for s in &scenarios {
        println!(
            "{:<10} {:>14.4e} {:>14.4e} {:>14.4e} {:>14.4e}",
            s.name, s.hybrid, s.always_cim, s.always_host, s.oracle
        );
    }
    println!(
        "split      {} units -> {} cim / {} host; makespan {:.4e}s vs whole {:.4e}s; speedup {:.3}x",
        split.plan.units(),
        split.plan.cim_units(),
        split.plan.host_units(),
        split.split_makespan.get(),
        split.whole_best.get(),
        split.speedup
    );
    println!("decisions {decisions}   mispredictions {mispredictions}");

    // The vendored serde is a no-op stub, so the snapshot is written by
    // hand; `--check` validates exactly this shape.
    let row = |s: &Scenario| {
        format!(
            "  \"{0}_hybrid\": {1:.6e},\n  \"{0}_always_cim\": {2:.6e},\n  \
             \"{0}_always_host\": {3:.6e},\n  \"{0}_oracle\": {4:.6e}",
            s.name, s.hybrid, s.always_cim, s.always_host, s.oracle
        )
    };
    let calibration_label = calibration.as_ref().map_or_else(
        || "frozen-identity".to_string(),
        |p| p.display().to_string(),
    );
    let json = format!(
        "{{\n  \"schema\": \"{SCHEMA}\",\n  \"objective\": \"{objective}\",\n  \
         \"calibration\": \"{calibration_label}\",\n{},\n{},\n{},\n  \
         \"split_cim_units\": {},\n  \"split_host_units\": {},\n  \
         \"split_makespan_ps\": {:.6e},\n  \"split_whole_best_ps\": {:.6e},\n  \
         \"split_speedup\": {:.6},\n  \
         \"decisions\": {decisions},\n  \"mispredictions\": {mispredictions}\n}}\n",
        row(&scenarios[0]),
        row(&scenarios[1]),
        row(&scenarios[2]),
        split.plan.cim_units(),
        split.plan.host_units(),
        split.split_makespan.get() * 1e12,
        split.whole_best.get() * 1e12,
        split.speedup,
    );
    std::fs::write(&path, &json).expect("write BENCH_dispatch.json");
    println!("\n[written] {}", path.display());
}
