//! Hybrid-dispatch snapshot: scores the certificate-driven dispatcher
//! against both pure policies and the offline oracle on the shipped
//! workload mix, and writes the four-column comparison to
//! `BENCH_dispatch.json` at the workspace root.
//!
//! ```bash
//! cargo run --release -p cim-bench --bin bench_dispatch              # full run
//! cargo run --release -p cim-bench --bin bench_dispatch -- --quick   # CI-sized
//! cargo run --release -p cim-bench --bin bench_dispatch -- --check   # schema only
//! cargo run --release -p cim-bench --bin bench_dispatch -- --objective edp
//! ```
//!
//! Three scenarios, each scored four ways under one objective (lower
//! is better): route everything to the crossbar (`always_cim`), route
//! everything to the conventional host (`always_host`), let the
//! certificate-driven dispatcher choose (`hybrid`), and the offline
//! oracle (per-unit best of both machines with perfect hindsight).
//!
//! Every run re-proves the dispatch contracts before writing the
//! snapshot: the decision trace is bit-identical across thread counts,
//! the hybrid lands within 5% of the oracle, and each pure policy
//! loses at least one scenario — the reason the dispatcher exists.

use cim_bench::{repo_root_file, Args};
use cim_dispatch::HybridExecutor;
use cim_fabric::{
    DispatchPolicy, FabricExecutor, ServeConfig, ServeFrontEnd, ServeReport, TrafficSpec,
};
use cim_sim::{BatchPolicy, CimExecutor, ConventionalExecutor, ExecutionBackend};
use cim_units::{DispatchObjective, Energy};
use cim_workloads::{AdditionWorkload, DnaWorkload};

const SCHEMA: &str = "cim-bench-dispatch/1";

/// Every field a valid snapshot must carry, in schema order.
const REQUIRED_FIELDS: [&str; 16] = [
    "schema",
    "objective",
    "dna_hybrid",
    "dna_always_cim",
    "dna_always_host",
    "dna_oracle",
    "additions_hybrid",
    "additions_always_cim",
    "additions_always_host",
    "additions_oracle",
    "serve_hybrid",
    "serve_always_cim",
    "serve_always_host",
    "serve_oracle",
    "decisions",
    "mispredictions",
];

fn check(path: &std::path::Path) -> Result<(), String> {
    let body = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    if !body.trim_start().starts_with('{') || !body.trim_end().ends_with('}') {
        return Err("snapshot is not a JSON object".into());
    }
    if !body.contains(&format!("\"schema\": \"{SCHEMA}\"")) {
        return Err(format!("snapshot does not declare schema {SCHEMA}"));
    }
    for field in REQUIRED_FIELDS {
        if !body.contains(&format!("\"{field}\":")) {
            return Err(format!("snapshot is missing required field '{field}'"));
        }
    }
    Ok(())
}

/// Strict objective flag: absent → energy, present-but-garbage → exit 2.
fn objective_flag(args: &Args) -> DispatchObjective {
    match args.value("--objective") {
        None => DispatchObjective::Energy,
        Some(raw) => DispatchObjective::parse(raw).unwrap_or_else(|| {
            eprintln!("error: --objective expects energy|makespan|energy_delay|edp, got `{raw}`");
            std::process::exit(2);
        }),
    }
}

/// The four scores of one scenario, all under the same objective.
struct Scenario {
    name: &'static str,
    hybrid: f64,
    always_cim: f64,
    always_host: f64,
    oracle: f64,
}

fn hybrid_executor(
    threads: usize,
    objective: DispatchObjective,
) -> HybridExecutor<CimExecutor, ConventionalExecutor> {
    let policy = BatchPolicy::with_threads(threads);
    HybridExecutor::frozen(
        CimExecutor::with_batch(policy),
        ConventionalExecutor::with_batch(policy),
        objective,
    )
}

/// Scores one whole-workload scenario: both machines run solo (the
/// pure policies *and* the oracle's two candidates), the hybrid runs
/// through its frozen dispatcher.
fn executor_scenario<W>(
    name: &'static str,
    workload: &W,
    threads: usize,
    objective: DispatchObjective,
    hybrid: &mut HybridExecutor<CimExecutor, ConventionalExecutor>,
) -> Scenario
where
    W: cim_workloads::Workload,
    CimExecutor: ExecutionBackend<W>,
    ConventionalExecutor: ExecutionBackend<W>,
{
    let policy = BatchPolicy::with_threads(threads);
    let score = |outcome: &cim_sim::RunOutcome| {
        objective.score(outcome.ledger.total_energy(), outcome.ledger.total_time())
    };
    let cim = CimExecutor::with_batch(policy)
        .run(workload)
        .expect("cim run");
    let host = ConventionalExecutor::with_batch(policy)
        .run(workload)
        .expect("host run");
    let dispatched = hybrid.dispatch(workload).expect("hybrid dispatch");
    let always_cim = score(&cim);
    let always_host = score(&host);
    Scenario {
        name,
        hybrid: score(&dispatched),
        always_cim,
        always_host,
        oracle: always_cim.min(always_host),
    }
}

fn front_end(policy: DispatchPolicy, tiles: u32, threads: usize) -> ServeFrontEnd {
    ServeFrontEnd {
        fabric: FabricExecutor::paper(1, tiles, BatchPolicy::with_threads(threads)),
        config: ServeConfig::sustained(),
        policy,
    }
}

/// A serve report's score under `objective`: total energy across both
/// machines' ledgers, against the modelled makespan.
fn serve_score(report: &ServeReport, objective: DispatchObjective) -> f64 {
    let energy = Energy::new(
        report.fabric_ledger.total_energy().get() + report.host_ledger.total_energy().get(),
    );
    objective.score(energy, report.makespan)
}

/// Scores the serving scenario under all three policies. The per-query
/// oracle *is* the identity-calibrated hybrid route table (each query
/// kind goes to the machine whose true prices score it lower), so the
/// oracle column equals the hybrid one by construction.
fn serve_scenario(
    traffic: &TrafficSpec,
    threads: usize,
    objective: DispatchObjective,
) -> (Scenario, ServeReport) {
    let hybrid_report = front_end(DispatchPolicy::hybrid(objective), 4, threads)
        .serve(traffic)
        .expect("hybrid serve");
    let cim_report = front_end(DispatchPolicy::AlwaysCim, 4, threads)
        .serve(traffic)
        .expect("always-cim serve");
    let host_report = front_end(DispatchPolicy::AlwaysHost, 4, threads)
        .serve(traffic)
        .expect("always-host serve");
    let hybrid = serve_score(&hybrid_report, objective);
    (
        Scenario {
            name: "serve",
            hybrid,
            always_cim: serve_score(&cim_report, objective),
            always_host: serve_score(&host_report, objective),
            oracle: hybrid,
        },
        hybrid_report,
    )
}

/// Asserts the dispatch contracts: the decision trace is bit-identical
/// across thread counts, serve results are thread-count independent
/// under the hybrid policy, the hybrid lands within 5% of the offline
/// oracle everywhere, and each pure policy loses at least one scenario.
fn prove_contracts(
    scenarios: &[Scenario],
    dna: &DnaWorkload,
    adds: &AdditionWorkload,
    traffic: &TrafficSpec,
    objective: DispatchObjective,
    hybrid_serve: &ServeReport,
) {
    let mut reference = hybrid_executor(1, objective);
    reference.dispatch(dna).expect("reference dna");
    reference.dispatch(adds).expect("reference adds");
    for threads in [2usize, 4] {
        let mut other = hybrid_executor(threads, objective);
        other.dispatch(dna).expect("re-run dna");
        other.dispatch(adds).expect("re-run adds");
        assert_eq!(
            other.trace(),
            reference.trace(),
            "dispatch trace differs at {threads} threads"
        );
    }
    for (tiles, threads) in [(1u32, 1usize), (2, 4)] {
        let other = front_end(DispatchPolicy::hybrid(objective), tiles, threads)
            .serve(traffic)
            .expect("serve re-run");
        assert_eq!(
            other.checksum, hybrid_serve.checksum,
            "{tiles}x{threads} hybrid serve checksum"
        );
        assert_eq!(
            (other.cim_queries, other.host_queries, other.mispredictions),
            (
                hybrid_serve.cim_queries,
                hybrid_serve.host_queries,
                hybrid_serve.mispredictions
            ),
            "{tiles}x{threads} hybrid serve routing"
        );
    }
    assert!(hybrid_serve.conserves(), "hybrid serve does not conserve");
    for s in scenarios {
        assert!(
            s.hybrid <= s.oracle * 1.05,
            "{}: hybrid {:.4e} misses the oracle {:.4e} by more than 5%",
            s.name,
            s.hybrid,
            s.oracle
        );
    }
    assert!(
        scenarios.iter().any(|s| s.always_cim > s.hybrid),
        "always-cim never loses a scenario; the dispatcher is pointless"
    );
    assert!(
        scenarios.iter().any(|s| s.always_host > s.hybrid),
        "always-host never loses a scenario; the dispatcher is pointless"
    );
}

fn main() {
    let args = Args::capture();
    let path = repo_root_file("BENCH_dispatch.json");

    if args.has("--check") {
        match check(&path) {
            Ok(()) => println!("[ok] {} matches schema {SCHEMA}", path.display()),
            Err(e) => {
                eprintln!("[fail] {e}");
                std::process::exit(1);
            }
        }
        return;
    }

    let quick = args.has("--quick");
    let objective = objective_flag(&args);
    let threads = args.numeric("--threads", 4);
    let ref_len = args.numeric("--ref-len", if quick { 1 << 12 } else { 1 << 14 });
    let n_ops = args.numeric("--ops", if quick { 1 << 12 } else { 1 << 14 });
    let queries = args.numeric("--queries", if quick { 4_000 } else { 16_000 });

    let dna = DnaWorkload::scaled(ref_len as u64, 64);
    let adds = AdditionWorkload::scaled(n_ops as u64, 7);
    let traffic = TrafficSpec::sustained(queries as u64, 2015);

    let mut hybrid = hybrid_executor(threads, objective);
    let dna_scenario = executor_scenario("dna", &dna, threads, objective, &mut hybrid);
    let adds_scenario = executor_scenario("additions", &adds, threads, objective, &mut hybrid);
    let (serve, hybrid_serve) = serve_scenario(&traffic, threads, objective);
    let decisions = hybrid.trace().len() as u64 + hybrid_serve.completed;
    let mispredictions = hybrid.trace().mispredictions() + hybrid_serve.mispredictions;
    let scenarios = [dna_scenario, adds_scenario, serve];

    prove_contracts(&scenarios, &dna, &adds, &traffic, objective, &hybrid_serve);

    println!("== dispatch snapshot (objective {objective}, {threads} threads) ==");
    println!(
        "{:<10} {:>14} {:>14} {:>14} {:>14}",
        "scenario", "hybrid", "always_cim", "always_host", "oracle"
    );
    for s in &scenarios {
        println!(
            "{:<10} {:>14.4e} {:>14.4e} {:>14.4e} {:>14.4e}",
            s.name, s.hybrid, s.always_cim, s.always_host, s.oracle
        );
    }
    println!("decisions {decisions}   mispredictions {mispredictions}");

    // The vendored serde is a no-op stub, so the snapshot is written by
    // hand; `--check` validates exactly this shape.
    let row = |s: &Scenario| {
        format!(
            "  \"{0}_hybrid\": {1:.6e},\n  \"{0}_always_cim\": {2:.6e},\n  \
             \"{0}_always_host\": {3:.6e},\n  \"{0}_oracle\": {4:.6e}",
            s.name, s.hybrid, s.always_cim, s.always_host, s.oracle
        )
    };
    let json = format!(
        "{{\n  \"schema\": \"{SCHEMA}\",\n  \"objective\": \"{objective}\",\n{},\n{},\n{},\n  \
         \"decisions\": {decisions},\n  \"mispredictions\": {mispredictions}\n}}\n",
        row(&scenarios[0]),
        row(&scenarios[1]),
        row(&scenarios[2]),
    );
    std::fs::write(&path, &json).expect("write BENCH_dispatch.json");
    println!("\n[written] {}", path.display());
}
