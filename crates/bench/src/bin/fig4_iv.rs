//! Regenerates **Fig. 4**: the I-V characteristic of a CRS cell (and,
//! for contrast, a single bipolar device), from a quasi-static
//! triangular sweep.
//!
//! ```bash
//! cargo run --release -p cim-bench --bin fig4_iv
//! ```

use cim_bench::write_csv;
use cim_device::{Crs, DeviceParams, IvSweep, ThresholdDevice, TwoTerminal};
use cim_units::{Time, Voltage};

fn main() {
    let p = DeviceParams::table1_cim();
    let sweep = IvSweep::new(Voltage::from_volts(3.5), 120, Time::from_nano_seconds(2.0));

    println!("== Fig. 4: CRS cell I-V (cell initialised to '0') ==\n");
    let mut cell = Crs::new_zero(p.clone());
    let mut csv = String::from("element,v_volts,i_amps,state\n");
    let mut last_state = cell.state();
    println!("{:>8} {:>14} {:>8}", "V", "I", "state");
    for v in sweep.waveform() {
        cell.apply(v, sweep.dwell);
        let i = cell.current_at(v);
        let state = cell.state();
        if state != last_state {
            println!(
                "{:>8.3} {:>14} {:>8}   <- transition",
                v.as_volts(),
                i.to_string(),
                state
            );
            last_state = state;
        }
        csv.push_str(&format!(
            "crs,{},{:e},{}\n",
            v.as_volts(),
            i.as_amps(),
            state
        ));
    }
    println!("final state: {}", cell.state());

    println!("\n== single bipolar device for contrast ==");
    let mut dev = ThresholdDevice::new_hrs(p);
    let mut was_lrs = false;
    for v in sweep.waveform() {
        dev.apply(v, sweep.dwell);
        let i = dev.current_at(v);
        let is_lrs = cim_device::Memristor::is_lrs(&dev);
        if is_lrs != was_lrs {
            println!(
                "{:>8.3} {:>14}   <- {}",
                v.as_volts(),
                i.to_string(),
                if is_lrs { "SET" } else { "RESET" }
            );
            was_lrs = is_lrs;
        }
        csv.push_str(&format!(
            "device,{},{:e},{}\n",
            v.as_volts(),
            i.as_amps(),
            if is_lrs { "LRS" } else { "HRS" }
        ));
    }

    write_csv("fig4_iv.csv", &csv);
    println!(
        "\n(the CRS trace shows the four thresholds: blocked below Vth1, the\n\
         ON window between Vth1 and Vth2, storage-to-storage transitions at\n\
         ±Vth2/Vth4 — and high resistance in BOTH stored states, the\n\
         sneak-path immunity of Fig. 3)"
    );
}
