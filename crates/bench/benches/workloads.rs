//! Workload-generation and cache-simulation benchmarks.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use cim_sim::{CacheConfig, CacheSim};
use cim_workloads::{AdditionWorkload, Genome, MemoryTrace, ReadSampler, SortedKmerIndex};

fn bench_index_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("index/build");
    group.sample_size(20);
    for len in [10_000usize, 100_000] {
        group.bench_with_input(BenchmarkId::from_parameter(len), &len, |b, &len| {
            let genome = Genome::generate(len, 1);
            b.iter(|| black_box(SortedKmerIndex::build(&genome, 16)));
        });
    }
    group.finish();
}

fn bench_read_mapping(c: &mut Criterion) {
    let genome = Genome::generate(100_000, 2);
    let index = SortedKmerIndex::build(&genome, 16);
    let reads = ReadSampler {
        read_len: 100,
        coverage: 1,
        error_rate: 0.01,
        seed: 3,
    }
    .sample(&genome);
    c.bench_function("index/map_read", |b| {
        let mut k = 0;
        b.iter(|| {
            let read = &reads[k % reads.len()];
            k += 1;
            let mut trace = MemoryTrace::new();
            black_box(index.map_read(&genome, read, &mut trace))
        });
    });
}

fn bench_cache_sim(c: &mut Criterion) {
    let genome = Genome::generate(100_000, 2);
    let index = SortedKmerIndex::build(&genome, 16);
    let reads = ReadSampler {
        read_len: 100,
        coverage: 1,
        error_rate: 0.0,
        seed: 4,
    }
    .sample(&genome);
    let mut trace = MemoryTrace::new();
    for read in reads.iter().take(200) {
        let _ = index.map_read(&genome, read, &mut trace);
    }
    c.bench_function("cache/replay_trace", |b| {
        b.iter(|| {
            let mut cache = CacheSim::new(CacheConfig::table1_8kb());
            black_box(cache.run_trace(&trace))
        });
    });
}

fn bench_additions(c: &mut Criterion) {
    c.bench_function("additions/checksum_100k", |b| {
        let w = AdditionWorkload::scaled(100_000, 5);
        b.iter(|| black_box(w.checksum()));
    });
}

criterion_group!(
    benches,
    bench_index_build,
    bench_read_mapping,
    bench_cache_sim,
    bench_additions
);
criterion_main!(benches);
