//! Crossbar solver benchmarks: lumped vs distributed, size scaling,
//! junction types (ablation A2 companion), and the warm-vs-cold /
//! parallel line-relaxation measurements behind `BENCH_solver.json`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use cim_crossbar::{
    solve_batch, BiasScheme, Cell, Crossbar, CrsCell, Geometry, ResistiveCell, SelectorCell,
};
use cim_device::DeviceParams;

fn array(n: usize) -> Crossbar<ResistiveCell> {
    let p = DeviceParams::table1_cim();
    let mut a = Crossbar::homogeneous(n, n, || ResistiveCell::new(p.clone()));
    a.fill(|r, c| (r + c) % 2 == 0);
    a
}

fn bench_lumped_sizes(c: &mut Criterion) {
    let mut group = c.benchmark_group("solver/lumped_read");
    for n in [8usize, 16, 32, 64] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let mut a = array(n);
            let v = a.cell(0, 0).params().v_set * 0.5;
            b.iter(|| black_box(a.solve_access(0, n - 1, v, BiasScheme::HalfV)));
        });
    }
    group.finish();
}

fn bench_distributed(c: &mut Criterion) {
    let mut group = c.benchmark_group("solver/distributed_read");
    for n in [8usize, 16, 32] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let p = DeviceParams::table1_cim();
            let mut a = array(n).with_geometry(Geometry::nanowire(p.cell_area));
            let v = p.v_set * 0.5;
            b.iter(|| black_box(a.solve_access(0, n - 1, v, BiasScheme::HalfV)));
        });
    }
    group.finish();
}

/// The tentpole measurement: cold (seed-equivalent) vs warm-started
/// solves of the same 64×64 access. `warm_after_flip` reprograms one
/// cell between solves — the realistic logic-program cadence.
fn bench_warm_vs_cold_64(c: &mut Criterion) {
    let n = 64;
    let mut group = c.benchmark_group("solver/warm_vs_cold_64");
    group.bench_function("cold", |b| {
        let a = array(n);
        let v = a.cell(0, 0).params().v_set * 0.5;
        b.iter(|| black_box(a.solve_access_cold(0, n - 1, v, BiasScheme::HalfV)));
    });
    group.bench_function("warm_same", |b| {
        let mut a = array(n);
        let v = a.cell(0, 0).params().v_set * 0.5;
        let _ = a.solve_access(0, n - 1, v, BiasScheme::HalfV);
        b.iter(|| black_box(a.solve_access(0, n - 1, v, BiasScheme::HalfV)));
    });
    group.bench_function("warm_after_flip", |b| {
        let mut a = array(n);
        let v = a.cell(0, 0).params().v_set * 0.5;
        let _ = a.solve_access(0, n - 1, v, BiasScheme::HalfV);
        let mut bit = false;
        b.iter(|| {
            a.program(n / 2, n / 2, bit);
            bit = !bit;
            black_box(a.solve_access(0, n - 1, v, BiasScheme::HalfV))
        });
    });
    group.finish();
}

/// Deterministic parallel line relaxation on a wire-resistive 64×64
/// array: serial vs 4 workers (bit-identical results by contract).
fn bench_parallel_distributed_64(c: &mut Criterion) {
    let n = 64;
    let p = DeviceParams::table1_cim();
    let mut group = c.benchmark_group("solver/distributed_threads_64");
    group.sample_size(10);
    for threads in [1usize, 4] {
        group.bench_with_input(
            BenchmarkId::from_parameter(threads),
            &threads,
            |b, &threads| {
                let mut a = array(n)
                    .with_geometry(Geometry::nanowire(p.cell_area))
                    .with_solver_threads(threads);
                let v = p.v_set * 0.5;
                let _ = a.solve_access(0, n - 1, v, BiasScheme::HalfV);
                let mut bit = false;
                b.iter(|| {
                    a.program(n / 2, n / 2, bit);
                    bit = !bit;
                    black_box(a.solve_access(0, n - 1, v, BiasScheme::HalfV))
                });
            },
        );
    }
    group.finish();
}

fn bench_batch_of_solves(c: &mut Criterion) {
    // Batch-of-solves concurrency: 8 independent warm 64x64 arrays
    // flip-solved through `solve_batch`, serial vs pooled dispatch.
    let n = 64;
    let p = DeviceParams::table1_cim();
    let v = p.v_set * 0.5;
    let mut group = c.benchmark_group("solver/batch_of_solves_8x64");
    group.sample_size(10);
    for threads in [1usize, 4] {
        group.bench_with_input(
            BenchmarkId::from_parameter(threads),
            &threads,
            |b, &threads| {
                let mut arrays: Vec<_> = (0..8)
                    .map(|k| {
                        let mut a = array(n);
                        a.program(k % n, k % n, true);
                        let _ = a.solve_access(0, n - 1, v, BiasScheme::HalfV);
                        a
                    })
                    .collect();
                let mut bit = false;
                b.iter(|| {
                    bit = !bit;
                    black_box(solve_batch(threads, &mut arrays, |idx, a| {
                        a.program((idx + n / 2) % n, n / 2, bit);
                        a.solve_access(0, n - 1, v, BiasScheme::HalfV)
                    }))
                });
            },
        );
    }
    group.finish();
}

fn bench_junctions(c: &mut Criterion) {
    let p = DeviceParams::table1_cim();
    let n = 16;
    let mut group = c.benchmark_group("solver/junction_read_16x16");
    group.bench_function("1R", |b| {
        let mut a = Crossbar::homogeneous(n, n, || ResistiveCell::new(p.clone()));
        a.fill(|_, _| true);
        b.iter(|| black_box(a.solve_access(0, n - 1, p.v_set * 0.5, BiasScheme::HalfV)));
    });
    group.bench_function("1S1R", |b| {
        let mut a =
            Crossbar::homogeneous(n, n, || SelectorCell::new(p.clone(), 10.0, p.v_set * 0.5));
        a.fill(|_, _| true);
        b.iter(|| black_box(a.solve_access(0, n - 1, p.v_set * 0.5, BiasScheme::HalfV)));
    });
    group.bench_function("CRS", |b| {
        let mut a = Crossbar::homogeneous(n, n, || CrsCell::new(p.clone()));
        a.fill(|_, _| true);
        b.iter(|| black_box(a.solve_access(0, n - 1, p.write_voltage * 0.95, BiasScheme::ThirdV)));
    });
    group.finish();
}

fn bench_cam_search(c: &mut Criterion) {
    use cim_crossbar::Cam;
    let mut group = c.benchmark_group("cam/search");
    group.sample_size(20);
    for words in [256usize, 1024, 4096] {
        group.bench_with_input(BenchmarkId::from_parameter(words), &words, |b, &words| {
            let p = DeviceParams::table1_cim();
            let mut cam = Cam::new(words, 32, p);
            for w in 0..words {
                cam.store(w, (w as u64).wrapping_mul(2_654_435_761) & 0xFFFF_FFFF);
            }
            b.iter(|| black_box(cam.search(12345)));
        });
    }
    group.finish();
}

fn bench_multistage_read(c: &mut Criterion) {
    let mut group = c.benchmark_group("read_style_16x16");
    group.bench_function("plain", |b| {
        let mut a = array(16);
        b.iter(|| black_box(a.read(0, 15, BiasScheme::HalfV)));
    });
    group.bench_function("multistage", |b| {
        let mut a = array(16);
        b.iter(|| black_box(a.read_multistage(0, 15, BiasScheme::HalfV)));
    });
    group.finish();
}

/// Read styles at the Fig. 3 margin-collapse size, where the two-phase
/// multistage read earns its keep.
fn bench_multistage_read_64(c: &mut Criterion) {
    let mut group = c.benchmark_group("read_style_64x64");
    group.sample_size(10);
    group.bench_function("plain", |b| {
        let mut a = array(64);
        b.iter(|| black_box(a.read(0, 63, BiasScheme::HalfV)));
    });
    group.bench_function("multistage", |b| {
        let mut a = array(64);
        b.iter(|| black_box(a.read_multistage(0, 63, BiasScheme::HalfV)));
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_lumped_sizes,
    bench_distributed,
    bench_warm_vs_cold_64,
    bench_parallel_distributed_64,
    bench_batch_of_solves,
    bench_junctions,
    bench_cam_search,
    bench_multistage_read,
    bench_multistage_read_64
);
criterion_main!(benches);
