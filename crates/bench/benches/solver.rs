//! Crossbar solver benchmarks: lumped vs distributed, size scaling,
//! junction types (ablation A2 companion).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use cim_crossbar::{BiasScheme, Cell, Crossbar, CrsCell, Geometry, ResistiveCell, SelectorCell};
use cim_device::DeviceParams;

fn array(n: usize) -> Crossbar<ResistiveCell> {
    let p = DeviceParams::table1_cim();
    let mut a = Crossbar::homogeneous(n, n, || ResistiveCell::new(p.clone()));
    a.fill(|r, c| (r + c) % 2 == 0);
    a
}

fn bench_lumped_sizes(c: &mut Criterion) {
    let mut group = c.benchmark_group("solver/lumped_read");
    for n in [8usize, 16, 32, 64] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let a = array(n);
            let v = a.cell(0, 0).params().v_set * 0.5;
            b.iter(|| black_box(a.solve_access(0, n - 1, v, BiasScheme::HalfV)))
        });
    }
    group.finish();
}

fn bench_distributed(c: &mut Criterion) {
    let mut group = c.benchmark_group("solver/distributed_read");
    for n in [8usize, 16, 32] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let p = DeviceParams::table1_cim();
            let a = array(n).with_geometry(Geometry::nanowire(p.cell_area));
            let v = p.v_set * 0.5;
            b.iter(|| black_box(a.solve_access(0, n - 1, v, BiasScheme::HalfV)))
        });
    }
    group.finish();
}

fn bench_junctions(c: &mut Criterion) {
    let p = DeviceParams::table1_cim();
    let n = 16;
    let mut group = c.benchmark_group("solver/junction_read_16x16");
    group.bench_function("1R", |b| {
        let mut a = Crossbar::homogeneous(n, n, || ResistiveCell::new(p.clone()));
        a.fill(|_, _| true);
        b.iter(|| black_box(a.solve_access(0, n - 1, p.v_set * 0.5, BiasScheme::HalfV)))
    });
    group.bench_function("1S1R", |b| {
        let mut a =
            Crossbar::homogeneous(n, n, || SelectorCell::new(p.clone(), 10.0, p.v_set * 0.5));
        a.fill(|_, _| true);
        b.iter(|| black_box(a.solve_access(0, n - 1, p.v_set * 0.5, BiasScheme::HalfV)))
    });
    group.bench_function("CRS", |b| {
        let mut a = Crossbar::homogeneous(n, n, || CrsCell::new(p.clone()));
        a.fill(|_, _| true);
        b.iter(|| black_box(a.solve_access(0, n - 1, p.write_voltage * 0.95, BiasScheme::ThirdV)))
    });
    group.finish();
}

fn bench_cam_search(c: &mut Criterion) {
    use cim_crossbar::Cam;
    let mut group = c.benchmark_group("cam/search");
    group.sample_size(20);
    for words in [256usize, 1024, 4096] {
        group.bench_with_input(BenchmarkId::from_parameter(words), &words, |b, &words| {
            let p = DeviceParams::table1_cim();
            let mut cam = Cam::new(words, 32, p);
            for w in 0..words {
                cam.store(w, (w as u64).wrapping_mul(2654435761) & 0xFFFF_FFFF);
            }
            b.iter(|| black_box(cam.search(12345)))
        });
    }
    group.finish();
}

fn bench_multistage_read(c: &mut Criterion) {
    let mut group = c.benchmark_group("read_style_16x16");
    group.bench_function("plain", |b| {
        let mut a = array(16);
        b.iter(|| black_box(a.read(0, 15, BiasScheme::HalfV)))
    });
    group.bench_function("multistage", |b| {
        let mut a = array(16);
        b.iter(|| black_box(a.read_multistage(0, 15, BiasScheme::HalfV)))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_lumped_sizes,
    bench_distributed,
    bench_junctions,
    bench_cam_search,
    bench_multistage_read
);
criterion_main!(benches);
