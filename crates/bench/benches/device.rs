//! Device-model microbenchmarks + ablation A1 (window functions).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use cim_device::{
    Crs, DeviceParams, IonDriftParams, LinearIonDrift, Memristor, ThresholdDevice, TwoTerminal,
    WindowFunction,
};
use cim_units::{Time, Voltage};

fn bench_threshold_device(c: &mut Criterion) {
    let p = DeviceParams::table1_cim();
    c.bench_function("threshold_device/write_pulse", |b| {
        b.iter(|| {
            let mut d = ThresholdDevice::new_hrs(p.clone());
            d.apply(black_box(p.write_voltage), p.write_time);
            black_box(d.state())
        });
    });
}

/// Ablation A1: the window-function choice changes ion-drift switching
/// dynamics; this quantifies the simulation cost and (via the reported
/// final states, printed once) the behavioural spread.
fn bench_window_functions(c: &mut Criterion) {
    let mut group = c.benchmark_group("ion_drift_window");
    for (name, window) in [
        ("none", WindowFunction::None),
        ("joglekar", WindowFunction::Joglekar { p: 2 }),
        ("biolek", WindowFunction::Biolek { p: 2 }),
        ("prodromakis", WindowFunction::Prodromakis { p: 2, j: 1.0 }),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &window, |b, &w| {
            let params = IonDriftParams {
                window: w,
                ..IonDriftParams::hp_tio2()
            };
            b.iter(|| {
                let mut d = LinearIonDrift::new(params.clone(), 0.1);
                d.apply(
                    black_box(Voltage::from_volts(1.0)),
                    Time::from_micro_seconds(1.0),
                );
                black_box(d.state())
            });
        });
    }
    group.finish();
}

fn bench_crs(c: &mut Criterion) {
    let p = DeviceParams::table1_cim();
    c.bench_function("crs/write_read_restore", |b| {
        b.iter(|| {
            let mut cell = Crs::new_zero(p.clone());
            cell.write(black_box(true));
            black_box(cell.read_restore())
        });
    });
    c.bench_function("crs/iv_sweep_100pts", |b| {
        let sweep =
            cim_device::IvSweep::new(Voltage::from_volts(3.5), 25, Time::from_nano_seconds(2.0));
        b.iter(|| {
            let mut cell = Crs::new_zero(p.clone());
            black_box(sweep.run(&mut cell))
        });
    });
}

criterion_group!(
    benches,
    bench_threshold_device,
    bench_window_functions,
    bench_crs
);
criterion_main!(benches);
