//! Stateful-logic benchmarks: IMPLY steps, gates, adders, comparator.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use cim_device::DeviceParams;
use cim_logic::{
    BitSliceEngine, Comparator, CrsImp, ImplyAdder, ImplyEngine, ProgramBuilder, Step, LANES,
};

fn bench_imply_step(c: &mut Criterion) {
    let device = DeviceParams::table1_cim();
    let params = cim_logic::ImplyParams::for_device(&device);
    c.bench_function("imply/single_step", |b| {
        let mut engine = ImplyEngine::new(2, device.clone(), params.clone());
        b.iter(|| {
            engine.write(0, true);
            engine.write(1, false);
            engine.exec_step(black_box(Step::Imply(0, 1)));
            black_box(engine.read(1))
        });
    });
    c.bench_function("imply/crs_single_gate", |b| {
        b.iter(|| {
            let mut gate = CrsImp::new(&device);
            black_box(gate.imp(black_box(true), black_box(false)))
        });
    });
}

fn bench_comparator(c: &mut Criterion) {
    let cmp = Comparator::new();
    c.bench_function("comparator/electrical_match", |b| {
        let mut engine = ImplyEngine::for_program(cmp.eq_program());
        b.iter(|| black_box(cmp.matches(&mut engine, black_box(2), black_box(3))));
    });
    c.bench_function("comparator/boolean_reference", |b| {
        let program = cmp.eq_program();
        b.iter(|| black_box(program.evaluate(&[true, false, true, true])));
    });
    c.bench_function("comparator/bitsliced_64lanes", |b| {
        let mut engine = BitSliceEngine::new();
        b.iter(|| {
            black_box(cmp.matches_sliced(
                &mut engine,
                black_box(0xAAAA_5555_AAAA_5555),
                black_box(0x0F0F_0F0F_0F0F_0F0F),
                black_box(0x3333_CCCC_3333_CCCC),
                black_box(0x00FF_00FF_00FF_00FF),
            ))
        });
    });
}

fn bench_adders(c: &mut Criterion) {
    let mut group = c.benchmark_group("adder/electrical");
    for bits in [4u32, 8, 16] {
        group.bench_with_input(BenchmarkId::from_parameter(bits), &bits, |b, &bits| {
            let adder = ImplyAdder::new(bits);
            let mut engine = ImplyEngine::for_program(adder.program());
            let mask = (1u64 << bits) - 1;
            b.iter(|| black_box(adder.add(&mut engine, 0xA5A5 & mask, 0x5A5A & mask)));
        });
    }
    group.finish();

    c.bench_function("adder/boolean_reference_32bit", |b| {
        let adder = ImplyAdder::new(32);
        b.iter(|| black_box(adder.add_reference(black_box(0xDEAD_BEEF), black_box(0x1234_5678))));
    });

    c.bench_function("adder/bitsliced_32bit_64pairs", |b| {
        let adder = ImplyAdder::new(32);
        let mut engine = BitSliceEngine::new();
        let pairs: Vec<(u64, u64)> = (0..LANES as u64)
            .map(|k| {
                (
                    k.wrapping_mul(0x9E37_79B9) & 0xFFFF_FFFF,
                    k.wrapping_mul(0x85EB_CA6B) & 0xFFFF_FFFF,
                )
            })
            .collect();
        let mut sums = [0u64; LANES];
        b.iter(|| {
            adder.add_sliced(&mut engine, black_box(&pairs), &mut sums);
            black_box(sums[0])
        });
    });
}

fn bench_synthesis(c: &mut Criterion) {
    c.bench_function("synthesis/full_adder_sum", |b| {
        use cim_logic::{synthesize, Expr};
        b.iter(|| {
            let expr = Expr::var(0).xor(Expr::var(1)).xor(Expr::var(2));
            black_box(synthesize(&expr))
        });
    });
    c.bench_function("synthesis/compile_nand_chain", |b| {
        b.iter(|| {
            let mut builder = ProgramBuilder::new();
            let mut reg = builder.input();
            for _ in 0..32 {
                let other = builder.input();
                reg = builder.nand(reg, other);
            }
            black_box(builder.finish(vec![reg]))
        });
    });
}

fn bench_logic_styles(c: &mut Criterion) {
    // Ablation: LUT (1 read, 2^n devices) vs IMPLY (many steps, few
    // devices) for the same 3-input function.
    use cim_logic::{synthesize, Expr, Lut};
    let expr = Expr::var(0).xor(Expr::var(1)).xor(Expr::var(2));
    let mut group = c.benchmark_group("logic_style");
    group.bench_function("lut_eval", |b| {
        let mut lut = Lut::from_expr(&expr, DeviceParams::table1_cim());
        b.iter(|| black_box(lut.eval(&[true, false, true])));
    });
    group.bench_function("imply_electrical", |b| {
        let program = synthesize(&expr);
        let mut engine = ImplyEngine::for_program(&program);
        b.iter(|| black_box(engine.run(&program, &[true, false, true])));
    });
    group.finish();
}

fn bench_simd(c: &mut Criterion) {
    use cim_logic::RowParallelEngine;
    let cmp = Comparator::new();
    let program = cmp.eq_program().clone();
    let mut group = c.benchmark_group("simd_rows");
    group.sample_size(20);
    for rows in [4usize, 16, 64] {
        group.bench_with_input(BenchmarkId::from_parameter(rows), &rows, |b, &rows| {
            let inputs: Vec<Vec<bool>> = (0..rows)
                .map(|k| vec![k % 2 == 0, k % 3 == 0, true, false])
                .collect();
            b.iter(|| {
                let mut simd = RowParallelEngine::for_program(&program, rows);
                black_box(simd.run(&program, &inputs))
            });
        });
    }
    for rows in [64usize, 256] {
        group.bench_with_input(BenchmarkId::new("bitsliced", rows), &rows, |b, &rows| {
            let inputs: Vec<Vec<bool>> = (0..rows)
                .map(|k| vec![k % 2 == 0, k % 3 == 0, true, false])
                .collect();
            b.iter(|| {
                let mut simd = RowParallelEngine::for_program_bitsliced(&program, rows);
                black_box(simd.run(&program, &inputs))
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_imply_step,
    bench_comparator,
    bench_adders,
    bench_synthesis,
    bench_logic_styles,
    bench_simd
);
criterion_main!(benches);
