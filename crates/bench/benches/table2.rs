//! End-to-end experiment benchmarks: the Table-2 pipelines themselves,
//! plus the serial-vs-parallel batch driver comparison (same results,
//! different wall-clock).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use cim_core::{AdditionsExperiment, Experiment};
use cim_sim::{BatchPolicy, CimExecutor, ConventionalExecutor};
use cim_workloads::{DnaSpec, DnaWorkload};

fn dna_experiment(ref_len: u64) -> Experiment<DnaWorkload> {
    Experiment::new(DnaWorkload {
        spec: DnaSpec {
            ref_len,
            coverage: 2,
            read_len: 100,
        },
        seed: 1,
    })
}

fn bench_experiments(c: &mut Criterion) {
    let mut group = c.benchmark_group("table2");
    group.sample_size(10);
    group.bench_function("additions_experiment_10k", |b| {
        b.iter(|| black_box(AdditionsExperiment::scaled(10_000, 1).run()));
    });
    group.bench_function("dna_experiment_20k", |b| {
        b.iter(|| black_box(dna_experiment(20_000).run()));
    });
    group.bench_function("dna_experiment_200k_serial", |b| {
        let exp = dna_experiment(200_000).with_batch(BatchPolicy::SERIAL);
        b.iter(|| black_box(exp.run()));
    });
    group.bench_function("dna_experiment_200k_parallel", |b| {
        let exp = dna_experiment(200_000).with_batch(BatchPolicy::auto());
        b.iter(|| black_box(exp.run()));
    });
    group.bench_function("projections_only", |b| {
        let conv = ConventionalExecutor::new();
        let cim = CimExecutor::new();
        b.iter(|| {
            black_box(conv.project_dna(0.5));
            black_box(cim.project_dna(0.5));
        });
    });
    group.finish();
}

criterion_group!(benches, bench_experiments);
criterion_main!(benches);
