//! End-to-end experiment benchmarks: the Table-2 pipelines themselves.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use cim_core::{AdditionsExperiment, DnaExperiment};
use cim_sim::{CimExecutor, ConventionalExecutor};
use cim_workloads::DnaSpec;

fn bench_experiments(c: &mut Criterion) {
    let mut group = c.benchmark_group("table2");
    group.sample_size(10);
    group.bench_function("additions_experiment_10k", |b| {
        b.iter(|| black_box(AdditionsExperiment::scaled(10_000, 1).run()))
    });
    group.bench_function("dna_experiment_20k", |b| {
        b.iter(|| {
            let exp = DnaExperiment {
                spec: DnaSpec {
                    ref_len: 20_000,
                    coverage: 2,
                    read_len: 100,
                },
                seed: 1,
                hit_ratio_mode: cim_core::HitRatioMode::PaperAssumption,
            };
            black_box(exp.run())
        })
    });
    group.bench_function("projections_only", |b| {
        let conv = ConventionalExecutor::new(1);
        let cim = CimExecutor::new(1);
        b.iter(|| {
            black_box(conv.project_dna(0.5));
            black_box(cim.project_dna(0.5));
        })
    });
    group.finish();
}

criterion_group!(benches, bench_experiments);
criterion_main!(benches);
