//! A real tile grid: the fabric's physical substrate.
//!
//! [`TiledCim`] (tiles.rs) prices tiling *overheads* but still models one
//! logical array — nothing actually owns a tile or shards work across
//! tiles. [`TileGrid`] promotes the tile to a first-class unit: a grid of
//! independent crossbar tiles, each with its own device budget, plus a
//! [`Placement`] map recording which resident working set and operand
//! columns live on which tile. Placement legality mirrors the
//! `Mapper::check` model from `cim-compiler` (capacity per tile, no two
//! operands sharing columns), re-expressed here so the architecture layer
//! stays below the compiler in the dependency order.
//!
//! **Modelled vs executed scale.** The paper's DNA machine is 18 750
//! clusters; the fabric executes on a handful of tiles as host-side
//! dispatch shards. Routing costs are therefore priced from the *fixed*
//! [`TileGrid::modeled_tiles`] (H-tree depth over the paper's cluster
//! count), never from the executed tile count — that keeps every ledger
//! bit-identical no matter how many tiles the run was sharded over, the
//! same executed-scale-vs-paper-projection split the workloads use.

use cim_units::Energy;
use serde::{Deserialize, Serialize};

use crate::cim::{CimMachine, CimOp, MemristorTech};
use crate::tiles::{Controller, Interconnect};

/// Position of one tile in the grid, row-major.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct TileCoord {
    /// Row index, from zero.
    pub row: u32,
    /// Column index, from zero.
    pub col: u32,
}

impl std::fmt::Display for TileCoord {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "({},{})", self.row, self.col)
    }
}

/// A grid of independent crossbar tiles sharing one technology and one
/// interconnect/controller model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TileGrid {
    /// Grid rows.
    pub rows: u32,
    /// Grid columns.
    pub cols: u32,
    /// Device budget of one tile.
    pub tile_devices: u64,
    /// The in-array operation tiles execute.
    pub op: CimOp,
    /// Device technology.
    pub tech: MemristorTech,
    /// Operand-movement model (H-tree hops).
    pub interconnect: Interconnect,
    /// Per-tile sequencer model.
    pub controller: Controller,
    /// Cluster count of the machine being *modelled* — routing depth is
    /// priced from this fixed value, not from `rows × cols`, so ledgers
    /// do not depend on how many tiles the host actually executed.
    pub modeled_tiles: u64,
}

impl TileGrid {
    /// The paper's DNA fabric: Table-1 5 nm devices, comparator tiles,
    /// realistic interconnect/controller, 18 750 modelled clusters —
    /// executed as a `rows × cols` grid of 1 Mb dispatch shards.
    pub fn paper_dna(rows: u32, cols: u32) -> Self {
        let monolith = CimMachine::dna_paper();
        Self {
            rows,
            cols,
            tile_devices: 1 << 20,
            op: monolith.op,
            tech: monolith.tech,
            interconnect: Interconnect::realistic(),
            controller: Controller::realistic(),
            modeled_tiles: 18_750,
        }
    }

    /// Number of executed tiles.
    pub fn tiles(&self) -> u64 {
        u64::from(self.rows) * u64::from(self.cols)
    }

    /// Total devices across the executed grid.
    pub fn devices(&self) -> u64 {
        self.tiles() * self.tile_devices
    }

    /// Coordinate of the tile at row-major `index`.
    ///
    /// # Panics
    /// If `index` is outside the grid.
    pub fn coord_of(&self, index: u64) -> TileCoord {
        assert!(index < self.tiles(), "tile index {index} out of grid");
        TileCoord {
            row: u32::try_from(index / u64::from(self.cols)).expect("grid bound"),
            col: u32::try_from(index % u64::from(self.cols)).expect("grid bound"),
        }
    }

    /// Row-major index of a coordinate.
    pub fn index_of(&self, coord: TileCoord) -> u64 {
        u64::from(coord.row) * u64::from(self.cols) + u64::from(coord.col)
    }

    /// H-tree hops for one non-local operand at *modelled* scale: the
    /// root round trip over `modeled_tiles` leaves. Deliberately
    /// independent of the executed tile count.
    pub fn route_hops(&self) -> u64 {
        let tiles = self.modeled_tiles.max(2) as f64;
        let hops = tiles.log2().ceil();
        assert!(hops.is_finite() && hops >= 0.0, "hop depth must be finite");
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        {
            hops as u64
        }
    }

    /// Energy to move one operand word from a remote tile: hop energy ×
    /// modelled hop depth.
    pub fn route_energy(&self) -> Energy {
        self.interconnect.hop_energy * self.route_hops() as f64
    }

    /// The tile that owns `key` under deterministic modular sharding.
    /// A pure function of `(key, tiles)` so dispatch is reproducible.
    pub fn home_tile(&self, key: u64) -> u64 {
        key % self.tiles().max(1)
    }

    /// Simultaneous in-array operations on one tile.
    pub fn parallel_ops_per_tile(&self) -> u64 {
        (self.tile_devices / self.op.cost(&self.tech).devices as u64).max(1)
    }
}

/// A span of crossbar columns `[column, column + width)` holding one
/// operand on a tile.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct OperandSpan {
    /// First column of the span.
    pub column: u32,
    /// Columns occupied.
    pub width: u32,
}

impl OperandSpan {
    /// One-past-the-last column.
    pub fn end(&self) -> u32 {
        self.column + self.width
    }

    /// True when two spans share at least one column.
    pub fn overlaps(&self, other: &OperandSpan) -> bool {
        self.column < other.end() && other.column < self.end()
    }
}

impl std::fmt::Display for OperandSpan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "cols[{}..{})", self.column, self.end())
    }
}

/// What one tile hosts: its resident device demand and the operand
/// columns programs on it read through.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TileAssignment {
    /// The tile.
    pub tile: TileCoord,
    /// Devices the resident working set requires on this tile.
    pub devices_needed: u64,
    /// Operand column spans; no two may overlap (two operands through
    /// the same columns produce garbage, the `OperandColumnConflict`
    /// failure mode of `Mapper::check`).
    pub operands: Vec<OperandSpan>,
}

/// Why a placement is illegal, mirroring `cim_compiler::MapError` at
/// tile granularity.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlaceError {
    /// An assignment names a tile outside the grid.
    UnknownTile {
        /// The out-of-grid coordinate.
        tile: TileCoord,
    },
    /// Two assignments claim the same tile.
    DuplicateTile {
        /// The doubly-claimed coordinate.
        tile: TileCoord,
    },
    /// A tile's resident working set exceeds its device budget.
    TileCapacity {
        /// The overcommitted tile.
        tile: TileCoord,
        /// Devices the assignment needs.
        needed: u64,
        /// Devices the tile has.
        capacity: u64,
    },
    /// Two operands on one tile map to overlapping columns.
    OperandOverlap {
        /// The conflicted tile.
        tile: TileCoord,
        /// First span.
        a: OperandSpan,
        /// Second span.
        b: OperandSpan,
    },
}

impl std::fmt::Display for PlaceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlaceError::UnknownTile { tile } => {
                write!(f, "tile {tile} is outside the grid")
            }
            PlaceError::DuplicateTile { tile } => {
                write!(f, "tile {tile} is assigned twice")
            }
            PlaceError::TileCapacity {
                tile,
                needed,
                capacity,
            } => write!(f, "tile {tile} needs {needed} devices but has {capacity}"),
            PlaceError::OperandOverlap { tile, a, b } => {
                write!(f, "tile {tile}: operand {a} overlaps operand {b}")
            }
        }
    }
}

impl std::error::Error for PlaceError {}

/// The placement map: which working set and operand columns live on
/// which tile of a [`TileGrid`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Placement {
    /// Per-tile assignments.
    pub assignments: Vec<TileAssignment>,
}

impl Placement {
    /// A uniform placement: every tile hosts the same working set
    /// (`devices_needed` devices) and two disjoint operand spans of
    /// `operand_width` columns each — the layout the DNA fabric uses
    /// (reference window in one span, query in the other).
    pub fn uniform(grid: &TileGrid, devices_needed: u64, operand_width: u32) -> Self {
        let assignments = (0..grid.tiles())
            .map(|index| TileAssignment {
                tile: grid.coord_of(index),
                devices_needed,
                operands: vec![
                    OperandSpan {
                        column: 0,
                        width: operand_width,
                    },
                    OperandSpan {
                        column: operand_width,
                        width: operand_width,
                    },
                ],
            })
            .collect();
        Self { assignments }
    }

    /// Checks legality against the grid: every tile exists and is
    /// claimed at most once, no tile is over capacity, and no two
    /// operand spans on one tile overlap. First violation wins.
    pub fn check(&self, grid: &TileGrid) -> Result<(), PlaceError> {
        let mut seen = std::collections::BTreeSet::new();
        for assignment in &self.assignments {
            let tile = assignment.tile;
            if tile.row >= grid.rows || tile.col >= grid.cols {
                return Err(PlaceError::UnknownTile { tile });
            }
            if !seen.insert(tile) {
                return Err(PlaceError::DuplicateTile { tile });
            }
            if assignment.devices_needed > grid.tile_devices {
                return Err(PlaceError::TileCapacity {
                    tile,
                    needed: assignment.devices_needed,
                    capacity: grid.tile_devices,
                });
            }
            for (i, a) in assignment.operands.iter().enumerate() {
                for b in &assignment.operands[i + 1..] {
                    if a.overlaps(b) {
                        return Err(PlaceError::OperandOverlap { tile, a: *a, b: *b });
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_indexing_round_trips() {
        let grid = TileGrid::paper_dna(2, 3);
        assert_eq!(grid.tiles(), 6);
        for index in 0..grid.tiles() {
            let coord = grid.coord_of(index);
            assert_eq!(grid.index_of(coord), index);
        }
        assert_eq!(grid.coord_of(5), TileCoord { row: 1, col: 2 });
        assert_eq!(grid.coord_of(5).to_string(), "(1,2)");
    }

    #[test]
    fn route_hops_price_modelled_scale_not_executed_scale() {
        // ceil(log2 18750) = 15 regardless of the executed grid shape.
        for (r, c) in [(1, 1), (1, 2), (2, 2), (4, 4)] {
            let grid = TileGrid::paper_dna(r, c);
            assert_eq!(grid.route_hops(), 15, "{r}x{c}");
            assert_eq!(grid.route_energy(), grid.interconnect.hop_energy * 15.0);
        }
    }

    #[test]
    fn home_tile_is_deterministic_modular_sharding() {
        let grid = TileGrid::paper_dna(2, 2);
        for key in 0..100 {
            assert_eq!(grid.home_tile(key), key % 4);
            assert!(grid.home_tile(key) < grid.tiles());
        }
    }

    #[test]
    fn uniform_placement_is_legal_on_its_grid() {
        let grid = TileGrid::paper_dna(2, 2);
        let placement = Placement::uniform(&grid, grid.tile_devices / 2, 64);
        assert_eq!(placement.assignments.len(), 4);
        assert_eq!(placement.check(&grid), Ok(()));
    }

    #[test]
    fn capacity_violations_carry_the_tile_coordinate() {
        let grid = TileGrid::paper_dna(2, 2);
        let placement = Placement::uniform(&grid, grid.tile_devices + 1, 64);
        match placement.check(&grid) {
            Err(PlaceError::TileCapacity {
                tile,
                needed,
                capacity,
            }) => {
                assert_eq!(tile, TileCoord { row: 0, col: 0 });
                assert_eq!(needed, grid.tile_devices + 1);
                assert_eq!(capacity, grid.tile_devices);
            }
            other => panic!("expected TileCapacity, got {other:?}"),
        }
    }

    #[test]
    fn operand_overlap_and_bad_tiles_are_rejected() {
        let grid = TileGrid::paper_dna(1, 2);
        let span = OperandSpan {
            column: 10,
            width: 32,
        };
        let clash = OperandSpan {
            column: 41,
            width: 8,
        };
        assert!(span.overlaps(&clash));
        let placement = Placement {
            assignments: vec![TileAssignment {
                tile: TileCoord { row: 0, col: 1 },
                devices_needed: 1,
                operands: vec![span, clash],
            }],
        };
        assert!(matches!(
            placement.check(&grid),
            Err(PlaceError::OperandOverlap { tile, .. }) if tile == TileCoord { row: 0, col: 1 }
        ));

        let outside = Placement {
            assignments: vec![TileAssignment {
                tile: TileCoord { row: 3, col: 0 },
                devices_needed: 1,
                operands: vec![],
            }],
        };
        assert!(matches!(
            outside.check(&grid),
            Err(PlaceError::UnknownTile { .. })
        ));

        let twice = Placement {
            assignments: vec![
                TileAssignment {
                    tile: TileCoord { row: 0, col: 0 },
                    devices_needed: 1,
                    operands: vec![],
                },
                TileAssignment {
                    tile: TileCoord { row: 0, col: 0 },
                    devices_needed: 1,
                    operands: vec![],
                },
            ],
        };
        assert!(matches!(
            twice.check(&grid),
            Err(PlaceError::DuplicateTile { .. })
        ));
    }

    #[test]
    fn errors_render_their_evidence() {
        let err = PlaceError::TileCapacity {
            tile: TileCoord { row: 1, col: 2 },
            needed: 100,
            capacity: 64,
        };
        let text = err.to_string();
        assert!(text.contains("(1,2)") && text.contains("100") && text.contains("64"));
        let overlap = PlaceError::OperandOverlap {
            tile: TileCoord { row: 0, col: 0 },
            a: OperandSpan {
                column: 0,
                width: 8,
            },
            b: OperandSpan {
                column: 4,
                width: 8,
            },
        };
        assert!(overlap.to_string().contains("cols[0..8)"));
    }
}
