//! The 22 nm FinFET technology constants of Table 1.

use cim_units::{Area, Energy, Frequency, Power, Time};
use serde::{Deserialize, Serialize};

/// Gate-level technology parameters for the conventional machine.
///
/// Table 1 ("Assumptions for conventional architecture"): gate delay
/// 14 ps, area 0.248 µm², power 175 nW, leakage 42.83 nW per gate, 1 GHz
/// operating frequency.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FinfetTech {
    /// Propagation delay of one gate.
    pub gate_delay: Time,
    /// Layout area of one gate.
    pub gate_area: Area,
    /// Dynamic power of one switching gate.
    pub gate_power: Power,
    /// Static leakage power of one gate.
    pub gate_leakage: Power,
    /// System clock.
    pub clock: Frequency,
}

impl FinfetTech {
    /// Table 1's 22 nm FinFET multi-core implementation numbers.
    pub fn table1_22nm() -> Self {
        Self {
            gate_delay: Time::from_pico_seconds(14.0),
            gate_area: Area::from_square_micro_meters(0.248),
            gate_power: Power::from_nano_watts(175.0),
            gate_leakage: Power::from_nano_watts(42.83),
            clock: Frequency::from_giga_hertz(1.0),
        }
    }

    /// Dynamic energy of one gate switching event (`P_gate · t_gate`).
    pub fn gate_energy(&self) -> Energy {
        self.gate_power * self.gate_delay
    }

    /// Leakage energy of one gate over one clock cycle *minus* its active
    /// window — Table 1's "leakage duration: cycle time − delay per gate".
    pub fn gate_leakage_energy_per_cycle(&self) -> Energy {
        let idle = self.clock.period() - self.gate_delay;
        self.gate_leakage * idle
    }

    /// One clock period.
    pub fn cycle(&self) -> Time {
        self.clock.period()
    }
}

impl Default for FinfetTech {
    fn default() -> Self {
        Self::table1_22nm()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_constants() {
        let t = FinfetTech::table1_22nm();
        assert_eq!(t.gate_delay.as_pico_seconds(), 14.0);
        assert!((t.gate_area.as_square_micro_meters() - 0.248).abs() < 1e-12);
        assert_eq!(t.gate_power.as_nano_watts(), 175.0);
        assert_eq!(t.gate_leakage.as_nano_watts(), 42.83);
        assert_eq!(t.clock.as_giga_hertz(), 1.0);
    }

    #[test]
    fn gate_energy_is_2_45_attojoules() {
        // 175 nW × 14 ps = 2.45 aJ — the "actual operation" energy scale
        // the paper contrasts with the ~70 pJ instruction overhead.
        let e = FinfetTech::table1_22nm().gate_energy();
        assert!((e.as_atto_joules() - 2.45).abs() < 1e-9);
    }

    #[test]
    fn leakage_uses_idle_window() {
        let t = FinfetTech::table1_22nm();
        let e = t.gate_leakage_energy_per_cycle();
        // 42.83 nW × (1000 − 14) ps ≈ 42.23 aJ.
        assert!((e.as_atto_joules() - 42.83 * 0.986).abs() < 0.01);
    }
}
