//! Fig. 1's classification of computing systems by working-set location.
//!
//! The paper classifies machines (a)–(e) by where the working set lives:
//! main memory (pre-80s), cache (today), distributed caches (multi-core),
//! near-memory accelerators ("processor-in-memory"), and finally inside
//! the computing cores themselves (the CIM proposal). This module turns
//! that taxonomy into an access-cost model so the figure's qualitative
//! argument becomes a computable sweep: for a memory-bound workload the
//! achievable throughput and energy are set by working-set distance.

use cim_units::{Energy, Time};
use serde::{Deserialize, Serialize};

/// Where the working set lives (Fig. 1, classes (a)–(e)).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum WorkingSetLocation {
    /// (a) Main memory beside the CPU — the pre-cache von Neumann machine.
    MainMemory,
    /// (b) A shared cache between core and memory.
    SharedCache,
    /// (c) Distributed caches in a many-core (today's machines).
    DistributedCache,
    /// (d) Near-memory processing units ("processor-in-memory").
    NearMemory,
    /// (e) Inside the core itself — the CIM architecture.
    InCore,
}

impl WorkingSetLocation {
    /// All classes in the figure's (a) → (e) order.
    pub const ALL: [WorkingSetLocation; 5] = [
        WorkingSetLocation::MainMemory,
        WorkingSetLocation::SharedCache,
        WorkingSetLocation::DistributedCache,
        WorkingSetLocation::NearMemory,
        WorkingSetLocation::InCore,
    ];

    /// The access cost of one working-set reference.
    ///
    /// Latencies follow the usual memory-hierarchy ladder (~100 ns DRAM,
    /// ~10 ns shared SRAM, ~3 ns local SRAM, ~1 ns near-memory, one
    /// device write time in-core); energies follow the data-movement
    /// ladder the paper cites ("energy consumption of the cache accesses
    /// and communication makes up easily 70% to 90%").
    pub fn access_cost(self) -> LocationCost {
        let (latency_ns, energy_pj) = match self {
            WorkingSetLocation::MainMemory => (100.0, 1_000.0),
            WorkingSetLocation::SharedCache => (10.0, 50.0),
            WorkingSetLocation::DistributedCache => (3.0, 10.0),
            WorkingSetLocation::NearMemory => (1.0, 1.0),
            WorkingSetLocation::InCore => (0.2, 0.001),
        };
        LocationCost {
            location: self,
            latency: Time::from_nano_seconds(latency_ns),
            energy: Energy::from_pico_joules(energy_pj),
        }
    }
}

impl std::fmt::Display for WorkingSetLocation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            WorkingSetLocation::MainMemory => "(a) working set in main memory",
            WorkingSetLocation::SharedCache => "(b) working set in shared cache",
            WorkingSetLocation::DistributedCache => "(c) working set in distributed caches",
            WorkingSetLocation::NearMemory => "(d) working set near memory",
            WorkingSetLocation::InCore => "(e) working set in the core (CIM)",
        };
        f.write_str(s)
    }
}

/// Access latency/energy of one working-set reference at a location.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LocationCost {
    /// Which class this cost describes.
    pub location: WorkingSetLocation,
    /// Latency of one reference.
    pub latency: Time,
    /// Energy of one reference.
    pub energy: Energy,
}

impl LocationCost {
    /// Throughput of a workload issuing one reference per operation, in
    /// operations per second (single stream).
    pub fn ops_per_second(&self) -> f64 {
        1.0 / self.latency.as_seconds()
    }
}

/// Sweeps all five classes for a workload of `ops_per_byte` intensity,
/// returning `(location, time per op, energy per op)` — the Fig. 1
/// regeneration data.
pub fn working_set_sweep(
    compute_time: Time,
    compute_energy: Energy,
) -> Vec<(LocationCost, Time, Energy)> {
    WorkingSetLocation::ALL
        .iter()
        .map(|loc| {
            let cost = loc.access_cost();
            (
                cost,
                compute_time + cost.latency,
                compute_energy + cost.energy,
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ladder_is_strictly_improving_towards_the_core() {
        let costs: Vec<LocationCost> = WorkingSetLocation::ALL
            .iter()
            .map(|l| l.access_cost())
            .collect();
        for pair in costs.windows(2) {
            assert!(pair[1].latency < pair[0].latency, "latency ladder broken");
            assert!(pair[1].energy < pair[0].energy, "energy ladder broken");
        }
    }

    #[test]
    fn in_core_matches_device_write_scale() {
        let c = WorkingSetLocation::InCore.access_cost();
        assert!((c.latency.as_pico_seconds() - 200.0).abs() < 1e-9);
        assert!((c.energy.as_femto_joules() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn sweep_adds_compute_costs() {
        let rows = working_set_sweep(Time::from_nano_seconds(1.0), Energy::from_pico_joules(0.5));
        assert_eq!(rows.len(), 5);
        let (cost, t, e) = rows[0];
        assert_eq!(cost.location, WorkingSetLocation::MainMemory);
        assert!((t.as_nano_seconds() - 101.0).abs() < 1e-9);
        assert!((e.as_pico_joules() - 1000.5).abs() < 1e-9);
    }

    #[test]
    fn throughput_is_latency_reciprocal() {
        let c = WorkingSetLocation::SharedCache.access_cost();
        assert!((c.ops_per_second() - 1e8).abs() < 1.0);
    }

    #[test]
    fn display_names_follow_figure_labels() {
        assert!(WorkingSetLocation::InCore.to_string().contains("(e)"));
        assert!(WorkingSetLocation::MainMemory.to_string().contains("(a)"));
    }
}
