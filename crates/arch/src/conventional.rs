//! The conventional 22 nm FinFET multi-core machine of Table 1.

use cim_units::{Area, Component, CostLedger, Energy, Phase, Power, Time};
use serde::{Deserialize, Serialize};

use crate::cache::CacheSpec;
use crate::finfet::FinfetTech;

/// A CMOS functional unit described by gate count and critical path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FunctionalUnit {
    /// Total gate count.
    pub gates: u32,
    /// Critical-path length in gate delays.
    pub gate_delays: u32,
}

impl FunctionalUnit {
    /// Combinational latency (`gate_delays × t_gate`).
    pub fn latency(self, tech: &FinfetTech) -> Time {
        tech.gate_delay * f64::from(self.gate_delays)
    }

    /// Dynamic energy of one operation: every gate switches once.
    pub fn dynamic_energy(self, tech: &FinfetTech) -> Energy {
        tech.gate_energy() * f64::from(self.gates)
    }

    /// Leakage power of the whole unit.
    pub fn leakage_power(self, tech: &FinfetTech) -> Power {
        tech.gate_leakage * f64::from(self.gates)
    }

    /// Layout area of the unit.
    pub fn area(self, tech: &FinfetTech) -> Area {
        tech.gate_area * f64::from(self.gates)
    }
}

/// The 32-bit carry-lookahead adder of Table 1: 208 gates ([Parhami's
/// gate accounting]), 18 gate delays → 252 ps at 14 ps/gate.
pub struct ClaAdder;

impl ClaAdder {
    /// Table 1's CLA parameters.
    pub fn unit() -> FunctionalUnit {
        FunctionalUnit {
            gates: 208,
            gate_delays: 18,
        }
    }
}

/// A DNA-character (byte) comparator.
///
/// Table 1 sizes each cluster at "32 comparators" without quoting a gate
/// count. We derive one with the same Parhami-style accounting as the
/// CLA: an 8-bit equality comparator is 8 XNOR gates (4 NAND-equivalents
/// each = 32 gates) plus a balanced 8-input AND tree (7 × 2-input ANDs ×
/// 3 gate-equivalents ≈ 21 gates), plus latching ≈ 5 gates → **58 gates**,
/// critical path 4 (XNOR) + 3·2 (tree) ≈ **10 gate delays**. The
/// `table2 --ablate-comparator` bench sweeps this assumption from 30 to
/// 120 gates.
pub struct ByteComparator;

impl ByteComparator {
    /// The derived comparator parameters.
    pub fn unit() -> FunctionalUnit {
        FunctionalUnit {
            gates: 58,
            gate_delays: 10,
        }
    }
}

/// The conventional machine: `clusters × units_per_cluster` functional
/// units, each cluster sharing one 8 kB cache.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConventionalMachine {
    /// Number of clusters.
    pub clusters: u64,
    /// Functional units per cluster (Table 1: 32).
    pub units_per_cluster: u64,
    /// The per-unit gate model.
    pub unit: FunctionalUnit,
    /// The shared per-cluster cache.
    pub cache: CacheSpec,
    /// Gate-level technology.
    pub tech: FinfetTech,
}

impl ConventionalMachine {
    /// The DNA-experiment machine: 18 750 clusters × 32 comparators,
    /// 50%-hit caches ("limited with the state-of-the-art chip area").
    pub fn dna_paper() -> Self {
        Self {
            clusters: 18_750,
            units_per_cluster: 32,
            unit: ByteComparator::unit(),
            cache: CacheSpec::table1_dna(),
            tech: FinfetTech::table1_22nm(),
        }
    }

    /// The mathematics-experiment machine: "fully scalable reusing
    /// clusters", 32 CLA adders each, 98%-hit caches. `n_ops` parallel
    /// additions determine the cluster count.
    pub fn math_paper(n_ops: u64) -> Self {
        let units = 32;
        Self {
            clusters: n_ops.div_ceil(units),
            units_per_cluster: units,
            unit: ClaAdder::unit(),
            cache: CacheSpec::table1_math(),
            tech: FinfetTech::table1_22nm(),
        }
    }

    /// Total parallel functional units.
    pub fn parallel_units(&self) -> u64 {
        self.clusters * self.units_per_cluster
    }

    /// Total silicon area: units + caches.
    pub fn area(&self) -> Area {
        let units = self.unit.area(&self.tech) * self.parallel_units() as f64;
        let caches = self.cache.area * self.clusters as f64;
        units + caches
    }

    /// Total static power: gate leakage + cache leakage.
    pub fn static_power(&self) -> Power {
        let gates = self.unit.leakage_power(&self.tech) * self.parallel_units() as f64;
        let caches = self.cache.static_power * self.clusters as f64;
        gates + caches
    }

    /// Latency of one operation: compute + expected memory access.
    ///
    /// The operand fetch goes through the shared cache
    /// (hit/miss-weighted); the compute itself fits in whole cycles.
    pub fn op_latency(&self) -> Time {
        let compute_cycles = self
            .unit
            .latency(&self.tech)
            .in_cycles_of(self.tech.clock)
            .max(1);
        self.tech.cycle() * compute_cycles as f64 + self.cache.expected_access_time(&self.tech)
    }

    /// Dynamic energy of one operation: unit switching + cache access.
    pub fn op_dynamic_energy(&self) -> Energy {
        self.unit.dynamic_energy(&self.tech) + self.cache.expected_access_energy()
    }

    /// Attributes the dynamic energy of `n_ops` uniform operations:
    /// [`Component::GateDynamic`] takes the functional-unit switching,
    /// [`Component::CacheAccess`] the expected hit energy, and
    /// [`Component::DramAccess`] the miss residual — so the three sum to
    /// `op_dynamic_energy × n_ops`.
    pub fn charge_op_energy(&self, ledger: &mut CostLedger, phase: Phase, n_ops: u64) {
        let n = n_ops as f64;
        let gate_energy = self.unit.dynamic_energy(&self.tech) * n;
        let hit_energy = self.cache.hit_energy * self.cache.hit_ratio * n;
        let miss_energy = self.op_dynamic_energy() * n - gate_energy - hit_energy;
        ledger.charge_energy(Component::GateDynamic, phase, gate_energy, n_ops);
        ledger.charge_energy(Component::CacheAccess, phase, hit_energy, n_ops);
        ledger.charge_energy(Component::DramAccess, phase, miss_energy, 0);
    }

    /// Attributes the makespan of `n_ops` operations scheduled over the
    /// machine's units, plus static power over that makespan. Time
    /// charges are makespan *shares* — compute cycles to
    /// [`Component::GateDynamic`], expected hit cycles to
    /// [`Component::CacheAccess`], the miss residual to
    /// [`Component::DramAccess`] — and sum to
    /// `op_latency × ⌈n_ops / parallel_units⌉` exactly. Statics split
    /// into [`Component::GateLeakage`] with [`Component::CacheStatic`]
    /// taking the residual.
    pub fn charge_makespan(&self, ledger: &mut CostLedger, phase: Phase, n_ops: u64) {
        let rounds = n_ops.div_ceil(self.parallel_units().max(1)) as f64;
        let makespan = self.op_latency() * rounds;
        let compute_cycles = self
            .unit
            .latency(&self.tech)
            .in_cycles_of(self.tech.clock)
            .max(1);
        let compute_time = self.tech.cycle() * compute_cycles as f64 * rounds;
        let hit_time =
            self.tech.cycle() * self.cache.hit_ratio * self.cache.hit_cycles as f64 * rounds;
        let miss_time = makespan - compute_time - hit_time;
        ledger.charge_time(Component::GateDynamic, phase, compute_time);
        ledger.charge_time(Component::CacheAccess, phase, hit_time);
        ledger.charge_time(Component::DramAccess, phase, miss_time);

        let gate_leak =
            self.unit.leakage_power(&self.tech) * self.parallel_units() as f64 * makespan;
        let cache_static = self.static_power() * makespan - gate_leak;
        ledger.charge_energy(Component::GateLeakage, phase, gate_leak, 0);
        ledger.charge_energy(Component::CacheStatic, phase, cache_static, 0);
    }

    /// Attributes a full batch of `n_ops` uniform operations into the
    /// ledger — the component-wise decomposition of the DESIGN.md §4
    /// aggregation ([`RunReport::batched`] with this machine's
    /// parameters): [`charge_op_energy`](Self::charge_op_energy) for the
    /// dynamic side, [`charge_makespan`](Self::charge_makespan) for time
    /// and statics.
    ///
    /// [`RunReport::batched`]: crate::RunReport::batched
    pub fn charge_batched(&self, ledger: &mut CostLedger, phase: Phase, n_ops: u64) {
        self.charge_op_energy(ledger, phase, n_ops);
        self.charge_makespan(ledger, phase, n_ops);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cla_matches_table1() {
        let tech = FinfetTech::table1_22nm();
        let cla = ClaAdder::unit();
        assert_eq!(cla.gates, 208);
        // Table 1: "Adder latency: 252 ps = 18 × 14 ps".
        assert!((cla.latency(&tech).as_pico_seconds() - 252.0).abs() < 1e-9);
    }

    #[test]
    fn dna_machine_has_600k_comparators() {
        let m = ConventionalMachine::dna_paper();
        assert_eq!(m.parallel_units(), 600_000);
        assert_eq!(m.clusters, 18_750);
    }

    #[test]
    fn math_machine_scales_with_op_count() {
        let m = ConventionalMachine::math_paper(1_000_000);
        assert_eq!(m.clusters, 31_250);
        assert_eq!(m.parallel_units(), 1_000_000);
        // Non-divisible counts round the cluster count up.
        assert_eq!(ConventionalMachine::math_paper(33).clusters, 2);
    }

    #[test]
    fn dna_op_latency_is_cache_dominated() {
        let m = ConventionalMachine::dna_paper();
        // 1 compute cycle + 83 expected access cycles = 84 ns at 1 GHz.
        assert!((m.op_latency().as_nano_seconds() - 84.0).abs() < 1e-9);
    }

    #[test]
    fn math_op_latency_uses_98pct_hits() {
        let m = ConventionalMachine::math_paper(1_000_000);
        // 1 + 4.28 cycles.
        assert!((m.op_latency().as_nano_seconds() - 5.28).abs() < 1e-9);
    }

    #[test]
    fn area_and_static_power_scale_with_clusters() {
        let m = ConventionalMachine::math_paper(1_000_000);
        let one = ConventionalMachine {
            clusters: 1,
            ..m.clone()
        };
        assert!((m.area() / one.area() - m.clusters as f64).abs() < 1.0);
        assert!((m.static_power() / one.static_power() - m.clusters as f64).abs() < 1.0);
        // Cache static dominates gate leakage: 1/64 W ≫ 208·32·42.83 nW.
        let cache_only = m.cache.static_power * m.clusters as f64;
        assert!(m.static_power().get() < cache_only.get() * 1.05);
    }

    #[test]
    fn charge_batched_decomposes_the_batched_aggregate() {
        let m = ConventionalMachine::dna_paper();
        let n = 1_000_000;
        let mut ledger = CostLedger::new();
        m.charge_batched(&mut ledger, Phase::Map, n);
        // Component-wise charges re-sum to the DESIGN.md §4 aggregate…
        let reference = crate::RunReport::batched(
            n,
            m.parallel_units(),
            m.op_latency(),
            m.op_dynamic_energy(),
            m.static_power(),
            m.area(),
        );
        assert!((ledger.total_energy() / reference.total_energy - 1.0).abs() < 1e-12);
        assert!((ledger.total_time() / reference.total_time - 1.0).abs() < 1e-12);
        // …and a report derived from the ledger conserves it to the bit.
        let report = crate::RunReport::from_ledger(n, m.area(), &ledger);
        assert!(report.conserves(&ledger));
        // Every conventional-side component is represented…
        for c in [
            Component::GateDynamic,
            Component::GateLeakage,
            Component::CacheAccess,
            Component::CacheStatic,
            Component::DramAccess,
        ] {
            assert!(
                !ledger.component_totals(c).is_zero(),
                "{c} unexpectedly zero"
            );
        }
        // …and nothing leaks into the CIM-side components.
        for c in [
            Component::CrossbarWrite,
            Component::CrossbarRead,
            Component::ImplyStep,
            Component::Controller,
            Component::Interconnect,
        ] {
            assert!(
                ledger.component_totals(c).is_zero(),
                "{c} unexpectedly charged"
            );
        }
    }

    #[test]
    fn op_energy_scale_sanity() {
        // Unit switching energy alone is sub-fJ (2.45 aJ × 208), the
        // cache access brings it to tens of pJ: the paper's "computation
        // is cheap, memory access is not" gap.
        let m = ConventionalMachine::math_paper(1_000_000);
        let unit_only = m.unit.dynamic_energy(&m.tech);
        assert!(unit_only.as_femto_joules() < 1.0);
        assert!(m.op_dynamic_energy().as_pico_joules() > 5.0);
    }
}
