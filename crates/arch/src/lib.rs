//! Architecture-level analytical models of the two machines compared in
//! Table 2 of the DATE'15 CIM paper.
//!
//! Everything here is a *named constant from the paper's Table 1* plus a
//! documented aggregation (DESIGN.md §4). The two machine descriptions —
//! [`ConventionalMachine`] (22 nm FinFET multi-core with per-cluster 8 kB
//! caches) and [`CimMachine`] (5 nm memristor crossbar with IMPLY/CRS
//! logic) — expose primitive latencies/energies that `cim-sim`'s
//! executors consume; [`Metrics`] converts finished runs into the three
//! Table-2 figures of merit:
//!
//! 1. energy-delay product per operation,
//! 2. computing efficiency (operations per joule),
//! 3. performance per area (operations per second per mm²).
//!
//! [`WorkingSetLocation`] models Fig. 1's taxonomy — where the working
//! set lives, classes (a) through (e) — as an access-cost model, so the
//! figure's qualitative story ("move the working set into the core")
//! becomes a computable sweep.

mod cache;
mod cim;
mod conventional;
mod finfet;
mod grid;
mod metrics;
mod taxonomy;
mod tiles;

pub use cache::CacheSpec;
pub use cim::{CimMachine, CimOp, MemristorTech};
pub use conventional::{ByteComparator, ClaAdder, ConventionalMachine, FunctionalUnit};
pub use finfet::FinfetTech;
pub use grid::{OperandSpan, PlaceError, Placement, TileAssignment, TileCoord, TileGrid};
pub use metrics::{Metrics, MetricsError, RunReport};
pub use taxonomy::{working_set_sweep, LocationCost, WorkingSetLocation};
pub use tiles::{Controller, Interconnect, TiledCim};
