//! The per-cluster 8 kB shared cache of Table 1.

use cim_units::{Area, Energy, Power, Time};
use serde::{Deserialize, Serialize};

use crate::finfet::FinfetTech;

/// Cache parameters (Table 1: 8 kB shared per cluster, 0.0092 mm²,
/// 1/64 W static power, 1-cycle hits, 165-cycle miss penalty).
///
/// Table 1 quotes no *dynamic* access energies; `hit_energy` and
/// `miss_energy` carry documented assumptions (an 8 kB SRAM read at 22 nm
/// costs ≈ 10 pJ; a miss adds a DRAM access at ≈ 1 nJ) that the
/// `table2 --ablate-hitrate` bench sweeps.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CacheSpec {
    /// Capacity in bytes.
    pub capacity_bytes: usize,
    /// Layout area.
    pub area: Area,
    /// Static (leakage) power.
    pub static_power: Power,
    /// Probability that an access hits.
    pub hit_ratio: f64,
    /// Hit latency in cycles.
    pub hit_cycles: u64,
    /// Miss penalty in cycles.
    pub miss_penalty_cycles: u64,
    /// Write latency in cycles.
    pub write_cycles: u64,
    /// Dynamic energy of a hit (assumption, see type docs).
    pub hit_energy: Energy,
    /// Dynamic energy of a miss including the backing-store access
    /// (assumption, see type docs).
    pub miss_energy: Energy,
}

impl CacheSpec {
    /// Table 1's cache with the DNA experiment's 50% hit ratio.
    pub fn table1_dna() -> Self {
        Self {
            capacity_bytes: 8 * 1024,
            area: Area::from_square_milli_meters(0.0092),
            static_power: Power::from_watts(1.0 / 64.0),
            hit_ratio: 0.5,
            hit_cycles: 1,
            miss_penalty_cycles: 165,
            write_cycles: 1,
            hit_energy: Energy::from_pico_joules(10.0),
            miss_energy: Energy::from_nano_joules(1.0),
        }
    }

    /// Table 1's cache with the mathematics experiment's 98% hit ratio.
    pub fn table1_math() -> Self {
        Self {
            hit_ratio: 0.98,
            ..Self::table1_dna()
        }
    }

    /// Replaces the hit ratio (ablation hook).
    ///
    /// # Panics
    ///
    /// Panics if the ratio is outside `[0, 1]`.
    pub fn with_hit_ratio(mut self, hit_ratio: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&hit_ratio),
            "hit ratio must be in [0,1]"
        );
        self.hit_ratio = hit_ratio;
        self
    }

    /// Expected access latency in cycles
    /// (`hit·t_hit + (1 − hit)·t_miss`).
    pub fn expected_access_cycles(&self) -> f64 {
        self.hit_ratio * self.hit_cycles as f64
            + (1.0 - self.hit_ratio) * self.miss_penalty_cycles as f64
    }

    /// Expected access latency as wall-clock time at `tech`'s clock.
    pub fn expected_access_time(&self, tech: &FinfetTech) -> Time {
        tech.cycle() * self.expected_access_cycles()
    }

    /// Expected dynamic energy of one access.
    pub fn expected_access_energy(&self) -> Energy {
        self.hit_energy * self.hit_ratio + self.miss_energy * (1.0 - self.hit_ratio)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_constants() {
        let c = CacheSpec::table1_dna();
        assert_eq!(c.capacity_bytes, 8192);
        assert!((c.area.as_square_milli_meters() - 0.0092).abs() < 1e-12);
        assert!((c.static_power.as_watts() - 0.015_625).abs() < 1e-12);
        assert_eq!(c.miss_penalty_cycles, 165);
        assert_eq!(CacheSpec::table1_math().hit_ratio, 0.98);
    }

    #[test]
    fn expected_cycles_weight_hit_and_miss() {
        // 50%: 0.5·1 + 0.5·165 = 83 cycles.
        let dna = CacheSpec::table1_dna();
        assert!((dna.expected_access_cycles() - 83.0).abs() < 1e-12);
        // 98%: 0.98·1 + 0.02·165 = 4.28 cycles.
        let math = CacheSpec::table1_math();
        assert!((math.expected_access_cycles() - 4.28).abs() < 1e-12);
    }

    #[test]
    fn expected_time_uses_clock() {
        let c = CacheSpec::table1_dna();
        let t = c.expected_access_time(&FinfetTech::table1_22nm());
        assert!((t.as_nano_seconds() - 83.0).abs() < 1e-9);
    }

    #[test]
    fn access_energy_interpolates() {
        let c = CacheSpec::table1_dna().with_hit_ratio(1.0);
        assert_eq!(c.expected_access_energy(), c.hit_energy);
        let c = c.with_hit_ratio(0.0);
        assert_eq!(c.expected_access_energy(), c.miss_energy);
    }

    #[test]
    #[should_panic(expected = "hit ratio")]
    fn rejects_bad_hit_ratio() {
        let _ = CacheSpec::table1_dna().with_hit_ratio(1.5);
    }
}
