//! The memristor CIM machine of Table 1.

use cim_logic::LogicCost;
use cim_units::{Area, Component, CostLedger, Energy, Phase, Power, Time};
use serde::{Deserialize, Serialize};

/// The 5 nm memristor technology of Table 1.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MemristorTech {
    /// One write (= one logic step) takes this long (Table 1: 200 ps).
    pub write_time: Time,
    /// Dynamic energy of one write (Table 1: 1 fJ).
    pub write_energy: Energy,
    /// Area of one memristor (Table 1: 1×10⁻⁴ µm²).
    pub cell_area: Area,
    /// Static power per device (Table 1: 0 — non-volatile storage).
    pub static_power_per_device: Power,
}

impl MemristorTech {
    /// Table 1's CIM-architecture numbers.
    pub fn table1_5nm() -> Self {
        Self {
            write_time: Time::from_pico_seconds(200.0),
            write_energy: Energy::from_femto_joules(1.0),
            cell_area: Area::from_square_micro_meters(1e-4),
            static_power_per_device: Power::ZERO,
        }
    }
}

impl Default for MemristorTech {
    fn default() -> Self {
        Self::table1_5nm()
    }
}

/// The in-crossbar operation a CIM machine executes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CimOp {
    /// The IMPLY character comparator (Table 1: 13 devices, 16 steps,
    /// 3.2 ns, 45 fJ).
    Comparator,
    /// The CRS TC adder for `bits`-wide words (Table 1: N+2 devices,
    /// 4N+5 steps, 8N fJ).
    TcAdder {
        /// Word width.
        bits: u32,
    },
}

impl CimOp {
    /// The paper-quoted cost of one operation under `tech`.
    pub fn cost(self, tech: &MemristorTech) -> LogicCost {
        match self {
            CimOp::Comparator => LogicCost::comparator_paper(),
            CimOp::TcAdder { bits } => {
                LogicCost::tc_adder_paper(bits, tech.write_time, tech.write_energy)
            }
        }
    }
}

/// The CIM machine: one large crossbar whose devices implement both the
/// working set and the functional units.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CimMachine {
    /// Total memristors in the crossbar.
    pub devices: u64,
    /// The operation implemented in-array.
    pub op: CimOp,
    /// Device technology.
    pub tech: MemristorTech,
    /// Probability that an operand is already resident in the crossbar.
    /// Table 1 keeps the conventional machine's hit/miss structure for
    /// data that must stream in from bulk storage (DNA: 50%, math: 98%).
    pub memory_hit_ratio: f64,
    /// Miss penalty in nanoseconds (Table 1 reuses the 165-cycle figure
    /// at the conventional machine's 1 GHz clock).
    pub miss_penalty: Time,
    /// CMOS controller energy overhead per operation (the paper assumes
    /// none; ablation hook).
    pub controller_energy_per_op: Energy,
}

impl CimMachine {
    /// The DNA-experiment crossbar. Table 1: "Size = 18750 × 8 kB =
    /// 1.536 × 10⁸ memristors" (the paper equates one byte of cache with
    /// one memristor — see EXPERIMENTS.md), 50% hit rate.
    pub fn dna_paper() -> Self {
        Self {
            devices: 153_600_000,
            op: CimOp::Comparator,
            tech: MemristorTech::table1_5nm(),
            memory_hit_ratio: 0.5,
            miss_penalty: Time::from_nano_seconds(165.0),
            controller_energy_per_op: Energy::ZERO,
        }
    }

    /// The mathematics-experiment crossbar: "scalable to support the 10⁶
    /// adders", 98% hit rate.
    pub fn math_paper(n_ops: u64, bits: u32) -> Self {
        let op = CimOp::TcAdder { bits };
        let devices_per_adder = u64::from(bits) + 2;
        Self {
            devices: n_ops * devices_per_adder,
            op,
            tech: MemristorTech::table1_5nm(),
            memory_hit_ratio: 0.98,
            miss_penalty: Time::from_nano_seconds(165.0),
            controller_energy_per_op: Energy::ZERO,
        }
    }

    /// How many operations fit in the crossbar simultaneously.
    pub fn parallel_ops(&self) -> u64 {
        let per_op = self.op.cost(&self.tech).devices as u64;
        self.devices / per_op
    }

    /// Crossbar area.
    pub fn area(&self) -> Area {
        self.tech.cell_area * self.devices as f64
    }

    /// Static power — "an architecture with practically zero leakage".
    pub fn static_power(&self) -> Power {
        self.tech.static_power_per_device * self.devices as f64
    }

    /// Latency of one in-array operation including the expected stream-in
    /// penalty for non-resident operands.
    pub fn op_latency(&self) -> Time {
        let compute = self.op.cost(&self.tech).latency;
        compute + self.miss_penalty * (1.0 - self.memory_hit_ratio)
    }

    /// Dynamic energy of one operation.
    pub fn op_dynamic_energy(&self) -> Energy {
        self.op.cost(&self.tech).energy + self.controller_energy_per_op
    }

    /// Attributes the dynamic energy of `n_ops` in-array operations: the
    /// op's own component ([`Component::ImplyStep`] for the comparator,
    /// [`Component::CrossbarWrite`] for the CRS adder) takes the
    /// switching energy; [`Component::Controller`] the per-op CMOS
    /// overhead (zero in the paper's model).
    pub fn charge_op_energy(&self, ledger: &mut CostLedger, phase: Phase, n_ops: u64) {
        let n = n_ops as f64;
        let cost = self.op.cost(&self.tech);
        ledger.charge_energy(cost.component, phase, cost.energy * n, n_ops);
        ledger.charge_energy(
            Component::Controller,
            phase,
            self.controller_energy_per_op * n,
            0,
        );
    }

    /// Attributes the makespan of `n_ops` operations over the crossbar's
    /// parallel slots: the compute share to the op's component, the
    /// expected operand stream-in residual to [`Component::DramAccess`]
    /// (Table 1 quotes no energy for it, so only time lands there), and
    /// static power over the makespan to [`Component::Controller`] (zero
    /// — "practically zero leakage"). Time charges sum to
    /// `op_latency × ⌈n_ops / parallel_ops⌉` exactly.
    pub fn charge_makespan(&self, ledger: &mut CostLedger, phase: Phase, n_ops: u64) {
        let cost = self.op.cost(&self.tech);
        let rounds = n_ops.div_ceil(self.parallel_ops().max(1)) as f64;
        let makespan = self.op_latency() * rounds;
        let compute_time = cost.latency * rounds;
        let stream_time = makespan - compute_time;
        ledger.charge_time(cost.component, phase, compute_time);
        ledger.charge_time(Component::DramAccess, phase, stream_time);
        ledger.charge_energy(
            Component::Controller,
            phase,
            self.static_power() * makespan,
            0,
        );
    }

    /// Attributes a full batch of `n_ops` in-array operations:
    /// [`charge_op_energy`](Self::charge_op_energy) plus
    /// [`charge_makespan`](Self::charge_makespan).
    pub fn charge_batched(&self, ledger: &mut CostLedger, phase: Phase, n_ops: u64) {
        self.charge_op_energy(ledger, phase, n_ops);
        self.charge_makespan(ledger, phase, n_ops);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dna_machine_matches_table1() {
        let m = CimMachine::dna_paper();
        assert_eq!(m.devices, 153_600_000);
        // 13 devices per comparator → ~11.8 M parallel comparators.
        assert_eq!(m.parallel_ops(), 153_600_000 / 13);
        // Comparator latency 3.2 ns + 0.5 × 165 ns expected stream-in.
        assert!((m.op_latency().as_nano_seconds() - (3.2 + 82.5)).abs() < 1e-9);
        assert!((m.op_dynamic_energy().as_femto_joules() - 45.0).abs() < 1e-12);
    }

    #[test]
    fn math_machine_sizes_for_adders() {
        let m = CimMachine::math_paper(1_000_000, 32);
        assert_eq!(m.devices, 34_000_000);
        assert_eq!(m.parallel_ops(), 1_000_000);
        // 4N+5 = 133 steps at 200 ps = 26.6 ns + 2% miss × 165 ns.
        assert!((m.op_latency().as_nano_seconds() - (26.6 + 3.3)).abs() < 1e-9);
        // 8N fJ = 256 fJ.
        assert!((m.op_dynamic_energy().as_femto_joules() - 256.0).abs() < 1e-9);
    }

    #[test]
    fn zero_static_power() {
        assert_eq!(CimMachine::dna_paper().static_power(), Power::ZERO);
    }

    #[test]
    fn area_comparison_with_conventional() {
        // The DNA crossbar (1.536e8 cells × 1e-4 µm² = 0.01536 mm²) is
        // four orders of magnitude smaller than the conventional
        // machine's caches alone (18 750 × 0.0092 mm² ≈ 172 mm²) — the
        // density argument of Section III.
        let cim = CimMachine::dna_paper();
        assert!((cim.area().as_square_milli_meters() - 0.01536).abs() < 1e-9);
        let conv = crate::conventional::ConventionalMachine::dna_paper();
        assert!(conv.area().as_square_milli_meters() > 100.0);
    }

    #[test]
    fn charge_batched_decomposes_the_batched_aggregate() {
        let m = CimMachine::dna_paper();
        let n = 10_000_000;
        let mut ledger = CostLedger::new();
        m.charge_batched(&mut ledger, Phase::Map, n);
        let reference = crate::RunReport::batched(
            n,
            m.parallel_ops(),
            m.op_latency(),
            m.op_dynamic_energy(),
            m.static_power(),
            m.area(),
        );
        assert!((ledger.total_energy() / reference.total_energy - 1.0).abs() < 1e-12);
        assert!((ledger.total_time() / reference.total_time - 1.0).abs() < 1e-12);
        let report = crate::RunReport::from_ledger(n, m.area(), &ledger);
        assert!(report.conserves(&ledger));
        // The comparator's switching lands on ImplyStep, the expected
        // operand stream-in (time only — Table 1 quotes no energy for
        // it) on DramAccess.
        let imply = ledger.component_totals(Component::ImplyStep);
        assert!(imply.energy.get() > 0.0 && imply.time.get() > 0.0);
        let stream = ledger.component_totals(Component::DramAccess);
        assert!(stream.time.get() > 0.0);
        assert_eq!(stream.energy.get(), 0.0);
        // Zero controller overhead and zero leakage stay zero.
        assert!(ledger.component_totals(Component::Controller).is_zero());
        assert!(ledger.component_totals(Component::GateLeakage).is_zero());
    }

    #[test]
    fn comparator_cost_round_trip() {
        let tech = MemristorTech::table1_5nm();
        assert_eq!(CimOp::Comparator.cost(&tech).devices, 13);
        assert_eq!(CimOp::TcAdder { bits: 32 }.cost(&tech).devices, 34);
    }
}
