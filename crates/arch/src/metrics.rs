//! The three Table-2 figures of merit.

use cim_units::{Area, CostLedger, Energy, EnergyDelay, Power, Time};
use serde::{Deserialize, Serialize};

/// The raw outcome of executing a workload on one machine.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RunReport {
    /// Operations completed.
    pub operations: u64,
    /// Wall-clock makespan.
    pub total_time: Time,
    /// Total energy: dynamic + static over the makespan.
    pub total_energy: Energy,
    /// Machine area used.
    pub area: Area,
}

impl RunReport {
    /// The shared batch aggregation (DESIGN.md §4): `n_ops` uniform
    /// operations scheduled as `R = ⌈n_ops / parallel⌉` rounds of
    /// `op_latency`, with dynamic energy per operation and leakage over
    /// the makespan.
    pub fn batched(
        n_ops: u64,
        parallel: u64,
        op_latency: Time,
        op_energy: Energy,
        static_power: Power,
        area: Area,
    ) -> Self {
        let rounds = n_ops.div_ceil(parallel.max(1));
        let total_time = op_latency * rounds as f64;
        let total_energy = op_energy * n_ops as f64 + static_power * total_time;
        RunReport {
            operations: n_ops,
            total_time,
            total_energy,
            area,
        }
    }

    /// Derives the report from a [`CostLedger`]: the totals are the
    /// ledger's canonical-order sums, so the conservation invariant
    /// ([`conserves`](Self::conserves)) holds bit-exactly by
    /// construction — and keeps holding as long as nobody edits the
    /// totals behind the ledger's back.
    pub fn from_ledger(operations: u64, area: Area, ledger: &CostLedger) -> Self {
        RunReport {
            operations,
            total_time: ledger.total_time(),
            total_energy: ledger.total_energy(),
            area,
        }
    }

    /// The conservation invariant: the ledger's component-wise sums
    /// reproduce this report's totals **to the bit**. Reports built via
    /// [`from_ledger`](Self::from_ledger) satisfy this by construction;
    /// tests hold every executor to it.
    pub fn conserves(&self, ledger: &CostLedger) -> bool {
        ledger.total_energy().get().to_bits() == self.total_energy.get().to_bits()
            && ledger.total_time().get().to_bits() == self.total_time.get().to_bits()
    }

    /// Average latency contribution of one operation (makespan / ops ×
    /// parallelism is folded into the makespan already; this is the
    /// per-op share of the total time).
    pub fn time_per_op(&self) -> Time {
        self.total_time / self.operations as f64
    }

    /// Average energy of one operation.
    pub fn energy_per_op(&self) -> Energy {
        self.total_energy / self.operations as f64
    }
}

/// Why a [`RunReport`] cannot yield [`Metrics`]: the run is degenerate
/// in a way that would divide by zero. Degenerate runs are *data*
/// errors (an empty workload, a zero-cost machine model), not programmer
/// errors, so they surface as a typed error instead of a panic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MetricsError {
    /// The run completed zero operations.
    NoOperations,
    /// The run took zero time.
    NoTime,
    /// The run consumed zero energy.
    NoEnergy,
    /// The machine occupies zero area.
    NoArea,
}

impl std::fmt::Display for MetricsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MetricsError::NoOperations => write!(f, "run must contain operations"),
            MetricsError::NoTime => write!(f, "run must take time"),
            MetricsError::NoEnergy => write!(f, "run must consume energy"),
            MetricsError::NoArea => write!(f, "machine must occupy area"),
        }
    }
}

impl std::error::Error for MetricsError {}

/// Table 2's three metrics, computed from a [`RunReport`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Metrics {
    /// Energy-delay product per operation (J·s) — lower is better.
    pub energy_delay_per_op: EnergyDelay,
    /// Computing efficiency: operations per joule — higher is better.
    pub ops_per_joule: f64,
    /// Performance per area: operations per second per mm² — higher is
    /// better.
    pub ops_per_second_per_mm2: f64,
}

impl Metrics {
    /// Computes the metrics from a run.
    ///
    /// `energy_delay_per_op` multiplies the per-op energy by the per-op
    /// share of the makespan (DESIGN.md §4 documents this aggregation —
    /// the paper's own is unspecified).
    ///
    /// # Errors
    ///
    /// Returns a [`MetricsError`] if the report has zero operations,
    /// time, energy, or area — a degenerate run the ratios are undefined
    /// for.
    pub fn from_run(run: &RunReport) -> Result<Self, MetricsError> {
        if run.operations == 0 {
            return Err(MetricsError::NoOperations);
        }
        // NaN slips past `<= 0.0`, so reject it explicitly — a NaN total
        // is as degenerate as a zero one.
        if run.total_time.get() <= 0.0 || run.total_time.get().is_nan() {
            return Err(MetricsError::NoTime);
        }
        if run.total_energy.get() <= 0.0 || run.total_energy.get().is_nan() {
            return Err(MetricsError::NoEnergy);
        }
        if run.area.get() <= 0.0 || run.area.get().is_nan() {
            return Err(MetricsError::NoArea);
        }
        let ops = run.operations as f64;
        Ok(Self {
            energy_delay_per_op: run.energy_per_op() * run.time_per_op(),
            ops_per_joule: ops / run.total_energy.as_joules(),
            ops_per_second_per_mm2: ops
                / run.total_time.as_seconds()
                / run.area.as_square_milli_meters(),
        })
    }

    /// Improvement ratios of `self` over `baseline` for the three metrics
    /// (EDP ratio is `baseline/self` so that > 1 always means better).
    pub fn improvement_over(&self, baseline: &Metrics) -> (f64, f64, f64) {
        (
            baseline.energy_delay_per_op.get() / self.energy_delay_per_op.get(),
            self.ops_per_joule / baseline.ops_per_joule,
            self.ops_per_second_per_mm2 / baseline.ops_per_second_per_mm2,
        )
    }
}

impl std::fmt::Display for Metrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "EDP/op {:.4e} J·s | {:.4e} ops/J | {:.4e} ops/s/mm²",
            self.energy_delay_per_op.get(),
            self.ops_per_joule,
            self.ops_per_second_per_mm2
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run() -> RunReport {
        RunReport {
            operations: 1_000,
            total_time: Time::from_micro_seconds(1.0),
            total_energy: Energy::from_micro_joules(2.0),
            area: Area::from_square_milli_meters(4.0),
        }
    }

    #[test]
    fn batched_reports_round_up_and_charge_leakage() {
        let r = RunReport::batched(
            1_001,
            100,
            Time::from_nano_seconds(10.0),
            Energy::from_pico_joules(2.0),
            Power::from_milli_watts(1.0),
            Area::from_square_milli_meters(3.0),
        );
        assert_eq!(r.operations, 1_001);
        // ⌈1001/100⌉ = 11 rounds × 10 ns.
        assert!((r.total_time.as_nano_seconds() - 110.0).abs() < 1e-9);
        // 1001 × 2 pJ + 1 mW × 110 ns = 2.002 nJ + 0.11 nJ.
        assert!((r.total_energy.as_nano_joules() - 2.112).abs() < 1e-9);
        assert!((r.area.as_square_milli_meters() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn per_op_shares() {
        let r = run();
        assert!((r.time_per_op().as_nano_seconds() - 1.0).abs() < 1e-12);
        assert!((r.energy_per_op().as_nano_joules() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn metric_values() {
        let m = Metrics::from_run(&run()).expect("non-degenerate run");
        // EDP/op = 2 nJ × 1 ns = 2e-18 J·s.
        assert!((m.energy_delay_per_op.get() - 2e-18).abs() < 1e-30);
        // 1000 ops / 2 µJ = 5e8 ops/J.
        assert!((m.ops_per_joule - 5e8).abs() < 1.0);
        // 1000 ops / 1 µs / 4 mm² = 2.5e8 ops/s/mm².
        assert!((m.ops_per_second_per_mm2 - 2.5e8).abs() < 1.0);
    }

    #[test]
    fn improvement_ratios_point_the_right_way() {
        let base = Metrics::from_run(&run()).expect("non-degenerate run");
        let better = Metrics {
            energy_delay_per_op: base.energy_delay_per_op / 100.0,
            ops_per_joule: base.ops_per_joule * 10.0,
            ops_per_second_per_mm2: base.ops_per_second_per_mm2 * 2.0,
        };
        let (edp, eff, perf) = better.improvement_over(&base);
        assert!((edp - 100.0).abs() < 1e-9);
        assert!((eff - 10.0).abs() < 1e-9);
        assert!((perf - 2.0).abs() < 1e-9);
    }

    #[test]
    fn rejects_empty_runs() {
        let mut r = run();
        r.operations = 0;
        assert_eq!(Metrics::from_run(&r), Err(MetricsError::NoOperations));
        r = run();
        r.total_time = Time::from_seconds(0.0);
        assert_eq!(Metrics::from_run(&r), Err(MetricsError::NoTime));
        r = run();
        r.total_energy = Energy::from_joules(0.0);
        assert_eq!(Metrics::from_run(&r), Err(MetricsError::NoEnergy));
        r = run();
        r.area = Area::from_square_milli_meters(0.0);
        assert_eq!(Metrics::from_run(&r), Err(MetricsError::NoArea));
        assert_eq!(
            MetricsError::NoOperations.to_string(),
            "run must contain operations"
        );
    }

    #[test]
    fn display_is_scientific() {
        let s = Metrics::from_run(&run())
            .expect("non-degenerate run")
            .to_string();
        assert!(s.contains("ops/J"));
        assert!(s.contains('e'));
    }
}
