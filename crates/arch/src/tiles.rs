//! Tiled CIM with interconnect and controller overheads.
//!
//! The paper's CIM estimates assume a monolithic crossbar with free
//! control ("The communication and control from/to the crossbar can be
//! realized using CMOS technology" — and then costed at zero). Real
//! arrays are tiled for wire-length and sneak reasons, operands hop
//! through an H-tree, and a CMOS sequencer burns energy on every
//! broadcast step. [`TiledCim`] adds those terms so the Table-2
//! conclusions can be stress-tested: how much overhead can the
//! architecture absorb before the orders-of-magnitude story degrades?
//! (`table2 --ablate-overhead` sweeps this.)

use cim_units::{Area, Component, CostLedger, Energy, Phase, Power, Time};
use serde::{Deserialize, Serialize};

use crate::cim::{CimMachine, CimOp, MemristorTech};
use crate::finfet::FinfetTech;

/// H-tree interconnect parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Interconnect {
    /// Latency of one tree hop.
    pub hop_latency: Time,
    /// Energy to move one operand word across one hop.
    pub hop_energy: Energy,
    /// Fraction of operations whose operands are already tile-local
    /// (the compiler's data-placement quality).
    pub locality: f64,
}

impl Interconnect {
    /// Free interconnect — the paper's implicit assumption.
    pub fn ideal() -> Self {
        Self {
            hop_latency: Time::ZERO,
            hop_energy: Energy::ZERO,
            locality: 1.0,
        }
    }

    /// A realistic on-chip H-tree at 22 nm: ~100 ps and ~50 fJ per
    /// 32-bit word per hop.
    pub fn realistic() -> Self {
        Self {
            hop_latency: Time::from_pico_seconds(100.0),
            hop_energy: Energy::from_femto_joules(50.0),
            locality: 0.9,
        }
    }
}

/// CMOS sequencer overhead per broadcast step.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Controller {
    /// Gates in the per-tile sequencer/decoder.
    pub gates_per_tile: u32,
    /// The CMOS technology the sequencer is built in.
    pub tech: FinfetTech,
}

impl Controller {
    /// Free control — the paper's implicit assumption.
    pub fn ideal() -> Self {
        Self {
            gates_per_tile: 0,
            tech: FinfetTech::table1_22nm(),
        }
    }

    /// A small per-tile sequencer (~2 000 gates: decoder + pulse timing).
    pub fn realistic() -> Self {
        Self {
            gates_per_tile: 2_000,
            tech: FinfetTech::table1_22nm(),
        }
    }

    /// Dynamic energy of issuing one broadcast step on one tile.
    pub fn step_energy(&self) -> Energy {
        self.tech.gate_energy() * f64::from(self.gates_per_tile)
    }

    /// Leakage of one tile's sequencer.
    pub fn leakage(&self) -> Power {
        self.tech.gate_leakage * f64::from(self.gates_per_tile)
    }

    /// Sequencer area per tile.
    pub fn area(&self) -> Area {
        self.tech.gate_area * f64::from(self.gates_per_tile)
    }
}

/// A CIM machine built from tiles with explicit overheads.
///
/// ```
/// use cim_arch::{Controller, Interconnect, TiledCim};
///
/// let ideal = TiledCim::math(1_000_000, 32, Interconnect::ideal(), Controller::ideal());
/// let real = TiledCim::math(1_000_000, 32, Interconnect::realistic(), Controller::realistic());
/// assert!(real.op_energy() > ideal.op_energy());
/// assert!(real.energy_overhead_factor() > 1.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TiledCim {
    /// Devices per tile.
    pub tile_devices: u64,
    /// Number of tiles.
    pub tiles: u64,
    /// The in-array operation.
    pub op: CimOp,
    /// Device technology.
    pub tech: MemristorTech,
    /// Operand-movement model.
    pub interconnect: Interconnect,
    /// Sequencer model.
    pub controller: Controller,
}

impl TiledCim {
    /// The paper's DNA machine re-expressed as 1 Mb tiles with the given
    /// overhead models.
    pub fn dna(interconnect: Interconnect, controller: Controller) -> Self {
        let monolith = CimMachine::dna_paper();
        let tile_devices = 1 << 20;
        Self {
            tile_devices,
            tiles: monolith.devices.div_ceil(tile_devices),
            op: monolith.op,
            tech: monolith.tech,
            interconnect,
            controller,
        }
    }

    /// The paper's mathematics machine as 1 Mb tiles.
    pub fn math(n_ops: u64, bits: u32, interconnect: Interconnect, controller: Controller) -> Self {
        let monolith = CimMachine::math_paper(n_ops, bits);
        let tile_devices = 1 << 20;
        Self {
            tile_devices,
            tiles: monolith.devices.div_ceil(tile_devices),
            op: monolith.op,
            tech: monolith.tech,
            interconnect,
            controller,
        }
    }

    /// Total devices.
    pub fn devices(&self) -> u64 {
        self.tile_devices * self.tiles
    }

    /// Simultaneous in-array operations.
    pub fn parallel_ops(&self) -> u64 {
        self.devices() / self.op.cost(&self.tech).devices as u64
    }

    /// Average tree hops for a non-local operand (root round trip in an
    /// H-tree over `tiles` leaves).
    pub fn average_hops(&self) -> f64 {
        (self.tiles.max(2) as f64).log2().ceil()
    }

    /// Per-operation latency: compute steps + expected operand movement.
    pub fn op_latency(&self) -> Time {
        let compute = self.op.cost(&self.tech).latency;
        let movement = self.interconnect.hop_latency
            * self.average_hops()
            * (1.0 - self.interconnect.locality);
        compute + movement
    }

    /// Per-operation dynamic energy: in-array switching + controller
    /// steps + expected operand movement.
    pub fn op_energy(&self) -> Energy {
        let cost = self.op.cost(&self.tech);
        let control = self.controller.step_energy() * cost.steps as f64;
        let movement =
            self.interconnect.hop_energy * self.average_hops() * (1.0 - self.interconnect.locality);
        cost.energy + control + movement
    }

    /// Static power: the sequencers leak even when the crossbar doesn't.
    pub fn static_power(&self) -> Power {
        self.controller.leakage() * self.tiles as f64
    }

    /// Area: crossbars + sequencers.
    pub fn area(&self) -> Area {
        self.tech.cell_area * self.devices() as f64 + self.controller.area() * self.tiles as f64
    }

    /// The overhead multiplier on per-op energy relative to the ideal
    /// (paper) machine.
    pub fn energy_overhead_factor(&self) -> f64 {
        let ideal = self.op.cost(&self.tech).energy;
        self.op_energy().get() / ideal.get()
    }

    /// Attributes a batch of `n_ops` operations into the ledger: the op's
    /// own component (in-array switching, compute makespan share),
    /// [`Component::Interconnect`] (expected operand movement — the
    /// makespan residual plus hop energy), and [`Component::Controller`]
    /// (sequencer broadcast steps plus leakage over the makespan).
    pub fn charge_batched(&self, ledger: &mut CostLedger, phase: Phase, n_ops: u64) {
        let n = n_ops as f64;
        let cost = self.op.cost(&self.tech);
        let rounds = n_ops.div_ceil(self.parallel_ops().max(1)) as f64;
        let makespan = self.op_latency() * rounds;
        let compute_time = cost.latency * rounds;
        let movement_time = makespan - compute_time;
        let movement_energy = self.interconnect.hop_energy
            * self.average_hops()
            * (1.0 - self.interconnect.locality)
            * n;
        let control_energy =
            self.controller.step_energy() * cost.steps as f64 * n + self.static_power() * makespan;

        ledger.charge(cost.component, phase, cost.energy * n, compute_time, n_ops);
        ledger.charge(
            Component::Interconnect,
            phase,
            movement_energy,
            movement_time,
            0,
        );
        ledger.charge_energy(Component::Controller, phase, control_energy, 0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ideal_tiled_machine_matches_the_monolith() {
        let tiled = TiledCim::dna(Interconnect::ideal(), Controller::ideal());
        let monolith = CimMachine::dna_paper();
        // Same op cost, essentially the same parallelism (tiling rounds
        // the device count up by < 1 tile).
        assert!((tiled.op_energy() / monolith.op_dynamic_energy() - 1.0).abs() < 1e-12);
        let ratio = tiled.parallel_ops() as f64 / monolith.parallel_ops() as f64;
        assert!((ratio - 1.0).abs() < 0.01, "parallelism ratio {ratio}");
        assert_eq!(tiled.static_power(), Power::ZERO);
    }

    #[test]
    fn realistic_overheads_cost_but_do_not_kill_the_story() {
        let tiled = TiledCim::math(
            1_000_000,
            32,
            Interconnect::realistic(),
            Controller::realistic(),
        );
        let factor = tiled.energy_overhead_factor();
        // The 2 000-gate sequencer adds ~2.45 aJ × 133 steps ≈ 0.65 pJ on
        // a 256 fJ op: a ~3–4× energy hit —
        assert!((1.5..10.0).contains(&factor), "overhead factor {factor}");
        // — which still leaves ≥ 2 orders of magnitude of the ~4 000×
        // Table-2 efficiency gap.
        assert!(factor < 100.0);
    }

    #[test]
    fn controller_leakage_scales_with_tiles() {
        let tiled = TiledCim::dna(Interconnect::ideal(), Controller::realistic());
        let per_tile = Controller::realistic().leakage();
        let expect = per_tile * tiled.tiles as f64;
        assert!((tiled.static_power() / expect - 1.0).abs() < 1e-12);
        assert!(tiled.static_power().get() > 0.0);
    }

    #[test]
    fn locality_controls_movement_costs() {
        let mut local = Interconnect::realistic();
        local.locality = 1.0;
        let mut remote = Interconnect::realistic();
        remote.locality = 0.0;
        let a = TiledCim::dna(local, Controller::ideal());
        let b = TiledCim::dna(remote, Controller::ideal());
        assert!(b.op_latency() > a.op_latency());
        assert!(b.op_energy() > a.op_energy());
        // Perfect locality removes movement entirely.
        let monolith = CimMachine::dna_paper();
        assert!((a.op_energy() / monolith.op_dynamic_energy() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn charge_batched_decomposes_the_batched_aggregate() {
        let m = TiledCim::math(
            1_000_000,
            32,
            Interconnect::realistic(),
            Controller::realistic(),
        );
        let n = 1_000_000;
        let mut ledger = CostLedger::new();
        m.charge_batched(&mut ledger, Phase::Add, n);
        let reference = crate::RunReport::batched(
            n,
            m.parallel_ops(),
            m.op_latency(),
            m.op_energy(),
            m.static_power(),
            m.area(),
        );
        assert!((ledger.total_energy() / reference.total_energy - 1.0).abs() < 1e-12);
        assert!((ledger.total_time() / reference.total_time - 1.0).abs() < 1e-12);
        let report = crate::RunReport::from_ledger(n, m.area(), &ledger);
        assert!(report.conserves(&ledger));
        // The CRS adder charges CrossbarWrite; realistic overheads make
        // the interconnect and controller visible in the breakdown.
        assert!(!ledger.component_totals(Component::CrossbarWrite).is_zero());
        assert!(!ledger.component_totals(Component::Interconnect).is_zero());
        assert!(!ledger.component_totals(Component::Controller).is_zero());
    }

    #[test]
    fn hops_grow_logarithmically() {
        let few = TiledCim {
            tiles: 4,
            ..TiledCim::dna(Interconnect::ideal(), Controller::ideal())
        };
        let many = TiledCim {
            tiles: 1024,
            ..TiledCim::dna(Interconnect::ideal(), Controller::ideal())
        };
        assert_eq!(few.average_hops(), 2.0);
        assert_eq!(many.average_hops(), 10.0);
    }
}
