//! The async-style serving front-end: queue, admission, batching,
//! backpressure, per-tenant accounting, latency histogram.
//!
//! [`ServeFrontEnd::serve`] replays a deterministic arrival process
//! against the fabric in **modelled time** (an integer picosecond
//! clock): queries arrive with seeded interarrival gaps, pass admission
//! control (a bounded queue plus a per-tenant quota — the backpressure
//! surface), and drain as cross-tenant batches into the deterministic
//! tile driver whenever the fabric is free. Each batch's modelled
//! service time is a pure function of the batch *content* (slowest
//! primitive in the batch, plus H-tree movement at modelled depth if
//! any operand is remote), never of the executed tile partition — so
//! the whole serve trace (who was admitted, how batches formed, every
//! latency) is bit-identical for any tile count and any thread count,
//! extending the fabric's determinism contract to the serving layer.
//!
//! Accounting is conserved at three granularities, all in exact count
//! space: per-tenant counts, per-tile counts, and the fabric counts
//! merge to the same totals, and the priced ledgers sum bit-for-bit
//! (dyadic unit prices; see `cim_units::counts`).

use std::collections::VecDeque;

use cim_sim::SimError;
use cim_units::{CostLedger, CountLedger, Time};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use cim_arch::TileCoord;

use crate::fabric::FabricExecutor;
use crate::query::{Query, QueryKind, TenantId, TrafficSpec};

/// Admission and batching parameters of the front-end.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ServeConfig {
    /// Queue capacity; arrivals beyond it are rejected (backpressure).
    pub queue_depth: usize,
    /// Maximum queued queries per tenant; the fairness half of
    /// admission control.
    pub tenant_quota: usize,
    /// Largest batch dispatched into the fabric at once.
    pub max_batch: usize,
    /// Mean modelled interarrival gap, in picoseconds.
    pub mean_gap_ps: u64,
}

impl ServeConfig {
    /// A sustained-overload default: arrivals (~0.5 query/ns) outpace
    /// single-query service (3.2–26.6 ns), so batches form, the queue
    /// fills, and admission control engages.
    pub fn sustained() -> Self {
        Self {
            queue_depth: 256,
            tenant_quota: 96,
            max_batch: 64,
            mean_gap_ps: 2_000,
        }
    }
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self::sustained()
    }
}

/// Log-bucketed latency histogram over modelled picoseconds: four
/// sub-buckets per power of two (HdrHistogram-style, ~19% worst-case
/// resolution), which is enough for p50 and p99 to separate within one
/// service-time binade.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LatencyHistogram {
    /// Bucket counts; see [`LatencyHistogram::bucket_bounds`] for the
    /// `[lower, upper)` picosecond range of each index.
    pub buckets: Vec<u64>,
}

impl LatencyHistogram {
    /// Number of buckets: 3 exact sub-4 ps buckets plus 4 sub-buckets
    /// per binade up to `u64::MAX` (whose bucket index is 250).
    pub const NUM_BUCKETS: usize = 251;

    /// An empty histogram.
    pub fn new() -> Self {
        Self {
            buckets: vec![0; Self::NUM_BUCKETS],
        }
    }

    /// Bucket index of a latency: exact below 4 ps, then
    /// `(exponent, 2-bit mantissa)` pairs.
    fn bucket(latency_ps: u64) -> usize {
        let ps = latency_ps.max(1);
        let exponent = ps.ilog2() as usize;
        if exponent < 2 {
            ps as usize - 1
        } else {
            let mantissa = ((ps >> (exponent - 2)) & 3) as usize;
            3 + (exponent - 2) * 4 + mantissa
        }
    }

    /// `[lower, upper)` picosecond bounds of bucket `index`. The final
    /// bucket's upper bound saturates to `u64::MAX` (its true bound,
    /// 2^64, does not fit in a `u64`).
    pub fn bucket_bounds(index: usize) -> (u64, u64) {
        if index < 3 {
            (index as u64 + 1, index as u64 + 2)
        } else {
            let exponent = (index - 3) / 4;
            let mantissa = ((index - 3) % 4) as u128;
            let clamp = |v: u128| u64::try_from(v).unwrap_or(u64::MAX);
            (
                clamp((4 + mantissa) << exponent),
                clamp((5 + mantissa) << exponent),
            )
        }
    }

    /// Records one latency.
    pub fn record(&mut self, latency_ps: u64) {
        self.buckets[Self::bucket(latency_ps)] += 1;
    }

    /// Total recorded samples.
    pub fn samples(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// The `q`-quantile (0 < q ≤ 1) as the upper bound of the first
    /// bucket whose cumulative count reaches it, or [`Time::ZERO`] when
    /// empty. Bucket resolution (~19%) is the histogram's contract;
    /// p50/p99 are read through this.
    pub fn quantile(&self, q: f64) -> Time {
        let total = self.samples();
        if total == 0 {
            return Time::ZERO;
        }
        let rank = (q * total as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &count) in self.buckets.iter().enumerate() {
            seen += count;
            if seen >= rank {
                return Time::from_pico_seconds(Self::bucket_bounds(i).1 as f64);
            }
        }
        Time::from_pico_seconds(2f64.powi(64))
    }
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

/// Per-tenant serving account.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TenantAccount {
    /// The tenant.
    pub tenant: TenantId,
    /// Queries this tenant submitted.
    pub submitted: u64,
    /// Queries admitted past both gates.
    pub admitted: u64,
    /// Rejections because the shared queue was full.
    pub rejected_queue_full: u64,
    /// Rejections because the tenant exceeded its quota.
    pub rejected_quota: u64,
    /// Queries completed by the fabric.
    pub completed: u64,
    /// Exact op counts attributed to this tenant.
    pub counts: CountLedger,
    /// Priced per-tenant ledger (`evaluate(counts)`).
    pub ledger: CostLedger,
}

/// Per-tile serving account (aggregated over all batches).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TileAccount {
    /// The tile.
    pub tile: TileCoord,
    /// Queries this tile executed.
    pub queries: u64,
    /// Exact op counts this tile accumulated.
    pub counts: CountLedger,
    /// Priced per-tile ledger (`evaluate(counts)`; these sum
    /// bit-for-bit to [`ServeReport::fabric_ledger`]).
    pub ledger: CostLedger,
}

/// Everything one serve run produced.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServeReport {
    /// Queries submitted (the traffic size).
    pub submitted: u64,
    /// Queries admitted.
    pub admitted: u64,
    /// Rejections: shared queue full.
    pub rejected_queue_full: u64,
    /// Rejections: tenant over quota.
    pub rejected_quota: u64,
    /// Queries completed (equals `admitted`; the queue drains fully).
    pub completed: u64,
    /// Batches dispatched.
    pub batches: u64,
    /// Deepest queue occupancy observed (backpressure evidence).
    pub peak_queue: usize,
    /// Modelled end-to-end makespan (last batch completion).
    pub makespan: Time,
    /// Modelled throughput: completed queries per makespan second.
    pub throughput_qps: f64,
    /// End-to-end latency histogram over completed queries.
    pub histogram: LatencyHistogram,
    /// Per-tenant accounts, in tenant order.
    pub tenants: Vec<TenantAccount>,
    /// Per-tile accounts, in tile order.
    pub tiles: Vec<TileAccount>,
    /// Exact fabric-wide counts (merge of the tile counts, and of the
    /// tenant counts).
    pub fabric_counts: CountLedger,
    /// The fabric ledger: `evaluate(fabric_counts)` — bit-equal to the
    /// sum of the per-tile (and per-tenant) ledgers.
    pub fabric_ledger: CostLedger,
    /// Order-insensitive checksum over completed queries' results.
    pub checksum: u64,
}

impl ServeReport {
    /// p50 modelled latency.
    pub fn p50(&self) -> Time {
        self.histogram.quantile(0.50)
    }

    /// p99 modelled latency.
    pub fn p99(&self) -> Time {
        self.histogram.quantile(0.99)
    }

    /// True when every conservation invariant holds bit-for-bit:
    /// tile counts and tenant counts each merge to the fabric counts,
    /// and tile/tenant ledgers each sum to the fabric ledger.
    pub fn conserves(&self) -> bool {
        let mut tile_counts = CountLedger::new();
        let mut tile_ledgers = CostLedger::new();
        for tile in &self.tiles {
            tile_counts.merge(&tile.counts);
            tile_ledgers.merge(&tile.ledger);
        }
        let mut tenant_counts = CountLedger::new();
        let mut tenant_ledgers = CostLedger::new();
        for tenant in &self.tenants {
            tenant_counts.merge(&tenant.counts);
            tenant_ledgers.merge(&tenant.ledger);
        }
        tile_counts == self.fabric_counts
            && tenant_counts == self.fabric_counts
            && tile_ledgers == self.fabric_ledger
            && tenant_ledgers == self.fabric_ledger
    }
}

/// The serving front-end: a fabric plus admission/batching policy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServeFrontEnd {
    /// The execution substrate.
    pub fabric: FabricExecutor,
    /// Queue/admission/batching parameters.
    pub config: ServeConfig,
}

impl ServeFrontEnd {
    /// Modelled service time of one batch, in picoseconds: the slowest
    /// primitive latency present in the batch, plus one H-tree traversal
    /// at modelled depth if any operand is remote. A pure function of
    /// the batch content — deliberately independent of the executed
    /// tile partition, preserving cross-tile-count determinism.
    fn batch_service_ps(&self, batch: &[Query]) -> u64 {
        let grid = &self.fabric.grid;
        let mut service = 0u64;
        let mut any_remote = false;
        for query in batch {
            let latency = match query.kind {
                QueryKind::Lookup | QueryKind::Compare => {
                    cim_arch::CimOp::Comparator.cost(&grid.tech).latency
                }
                QueryKind::Add => {
                    cim_arch::CimOp::TcAdder {
                        bits: crate::query::ADD_BITS,
                    }
                    .cost(&grid.tech)
                    .latency
                }
            };
            service = service.max((latency.get() * 1e12).round() as u64);
            any_remote |= !query.is_local(grid);
        }
        if any_remote {
            service +=
                grid.route_hops() * (grid.interconnect.hop_latency.get() * 1e12).round() as u64;
        }
        service.max(1)
    }

    /// Replays `traffic` through admission control and the fabric,
    /// producing the full serving report. Deterministic: bit-identical
    /// for any executed tile count and host thread count.
    pub fn serve(&self, traffic: &TrafficSpec) -> Result<ServeReport, SimError> {
        let queries = traffic.generate();
        let tenants = traffic.tenants.max(1) as usize;
        let mut gap_rng = StdRng::seed_from_u64(traffic.seed ^ 0x5E7E_5E7E_5E7E_5E7E);

        let mut queue: VecDeque<(Query, u64)> = VecDeque::new();
        let mut tenant_queued = vec![0usize; tenants];
        let mut accounts: Vec<TenantAccount> = (0..tenants)
            .map(|t| TenantAccount {
                tenant: TenantId(t as u32),
                submitted: 0,
                admitted: 0,
                rejected_queue_full: 0,
                rejected_quota: 0,
                completed: 0,
                counts: CountLedger::new(),
                ledger: CostLedger::new(),
            })
            .collect();
        let mut tiles: Vec<TileAccount> = (0..self.fabric.grid.tiles())
            .map(|i| TileAccount {
                tile: self.fabric.grid.coord_of(i),
                queries: 0,
                counts: CountLedger::new(),
                ledger: CostLedger::new(),
            })
            .collect();
        let mut histogram = LatencyHistogram::new();
        let mut fabric_counts = CountLedger::new();
        let mut checksum = 0u64;
        let (mut free_at, mut clock) = (0u64, 0u64);
        let (mut batches, mut completed, mut peak_queue) = (0u64, 0u64, 0usize);

        // One batch: pop up to max_batch in FIFO order (cross-tenant),
        // execute on the fabric, account everything.
        let mut dispatch = |start: u64,
                            queue: &mut VecDeque<(Query, u64)>,
                            tenant_queued: &mut [usize],
                            accounts: &mut [TenantAccount],
                            tiles: &mut [TileAccount],
                            histogram: &mut LatencyHistogram,
                            fabric_counts: &mut CountLedger,
                            checksum: &mut u64|
         -> Result<u64, SimError> {
            let take = queue.len().min(self.config.max_batch);
            let mut batch = Vec::with_capacity(take);
            let mut arrivals = Vec::with_capacity(take);
            for _ in 0..take {
                let (query, arrived) = queue.pop_front().expect("len checked");
                tenant_queued[query.tenant.0 as usize] -= 1;
                batch.push(query);
                arrivals.push(arrived);
            }
            let outcome = self.fabric.execute(&batch)?;
            let service = self.batch_service_ps(&batch);
            let completion = start + service;
            for (query, arrived) in batch.iter().zip(&arrivals) {
                histogram.record(completion - arrived);
                let account = &mut accounts[query.tenant.0 as usize];
                account.completed += 1;
                query.charge(&mut account.counts, &self.fabric.grid);
            }
            for tile_outcome in &outcome.tiles {
                let index = self.fabric.grid.index_of(tile_outcome.tile) as usize;
                tiles[index].queries += tile_outcome.queries;
                tiles[index].counts.merge(&tile_outcome.counts);
            }
            fabric_counts.merge(&outcome.counts);
            *checksum =
                checksum.wrapping_add(outcome.digest.checksum.expect("fabric always checksums"));
            batches += 1;
            completed += batch.len() as u64;
            Ok(completion)
        };

        for query in &queries {
            clock += 1 + gap_rng.gen::<u64>() % (2 * self.config.mean_gap_ps.max(1) - 1);
            // Drain whatever the fabric can finish before this arrival.
            while !queue.is_empty() && free_at <= clock {
                let start = free_at.max(queue.front().expect("non-empty").1);
                free_at = dispatch(
                    start,
                    &mut queue,
                    &mut tenant_queued,
                    &mut accounts,
                    &mut tiles,
                    &mut histogram,
                    &mut fabric_counts,
                    &mut checksum,
                )?;
            }
            // Admission control: shared queue bound, then tenant quota.
            let account = &mut accounts[query.tenant.0 as usize];
            account.submitted += 1;
            if queue.len() >= self.config.queue_depth {
                account.rejected_queue_full += 1;
                continue;
            }
            if tenant_queued[query.tenant.0 as usize] >= self.config.tenant_quota {
                account.rejected_quota += 1;
                continue;
            }
            account.admitted += 1;
            tenant_queued[query.tenant.0 as usize] += 1;
            queue.push_back((*query, clock));
            peak_queue = peak_queue.max(queue.len());
            // An idle fabric serves the arrival immediately; a busy one
            // lets the queue build (that is where batches come from).
            if free_at <= clock {
                free_at = dispatch(
                    clock,
                    &mut queue,
                    &mut tenant_queued,
                    &mut accounts,
                    &mut tiles,
                    &mut histogram,
                    &mut fabric_counts,
                    &mut checksum,
                )?;
            }
        }
        // Drain the tail.
        while !queue.is_empty() {
            let start = free_at.max(queue.front().expect("non-empty").1);
            free_at = dispatch(
                start,
                &mut queue,
                &mut tenant_queued,
                &mut accounts,
                &mut tiles,
                &mut histogram,
                &mut fabric_counts,
                &mut checksum,
            )?;
        }

        let prices = self.fabric.prices();
        for account in &mut accounts {
            account.ledger = prices.evaluate(&account.counts);
        }
        for tile in &mut tiles {
            tile.ledger = prices.evaluate(&tile.counts);
        }
        let fabric_ledger = prices.evaluate(&fabric_counts);
        let makespan = Time::from_pico_seconds(free_at as f64);
        let (rejected_queue_full, rejected_quota) = accounts.iter().fold((0, 0), |(f, q), a| {
            (f + a.rejected_queue_full, q + a.rejected_quota)
        });
        Ok(ServeReport {
            submitted: queries.len() as u64,
            admitted: completed,
            rejected_queue_full,
            rejected_quota,
            completed,
            batches,
            peak_queue,
            makespan,
            throughput_qps: if free_at == 0 {
                0.0
            } else {
                completed as f64 / makespan.get()
            },
            histogram,
            tenants: accounts,
            tiles,
            fabric_counts,
            fabric_ledger,
            checksum,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cim_sim::BatchPolicy;

    fn front_end(rows: u32, cols: u32, threads: usize) -> ServeFrontEnd {
        ServeFrontEnd {
            fabric: FabricExecutor::paper(rows, cols, BatchPolicy::with_threads(threads)),
            config: ServeConfig::sustained(),
        }
    }

    #[test]
    fn sustained_traffic_saturates_and_batches() {
        let report = front_end(2, 2, 1)
            .serve(&TrafficSpec::sustained(3_000, 17))
            .expect("serves");
        assert_eq!(report.submitted, 3_000);
        assert_eq!(report.completed, report.admitted);
        assert!(report.conserves(), "conservation failed");
        // Overload dynamics: batching kicks in (fewer batches than
        // queries) and the queue visibly builds.
        assert!(report.batches < report.completed, "no batching happened");
        assert!(report.peak_queue > 8, "queue never built");
        assert!(report.histogram.samples() == report.completed);
        assert!(report.p99() >= report.p50());
        assert!(report.throughput_qps > 0.0);
    }

    #[test]
    fn serve_trace_is_bit_identical_across_tiles_and_threads() {
        let traffic = TrafficSpec::sustained(1_500, 23);
        let reference = front_end(1, 1, 1).serve(&traffic).expect("reference");
        for (rows, cols) in [(1, 2), (2, 2)] {
            for threads in [1, 4] {
                let report = front_end(rows, cols, threads).serve(&traffic).expect("run");
                assert_eq!(report.checksum, reference.checksum);
                assert_eq!(report.fabric_counts, reference.fabric_counts);
                assert_eq!(report.fabric_ledger, reference.fabric_ledger);
                assert_eq!(report.histogram, reference.histogram);
                assert_eq!(report.tenants, reference.tenants);
                assert_eq!(
                    (
                        report.admitted,
                        report.rejected_queue_full,
                        report.rejected_quota
                    ),
                    (
                        reference.admitted,
                        reference.rejected_queue_full,
                        reference.rejected_quota
                    )
                );
                assert_eq!(report.makespan, reference.makespan);
            }
        }
    }

    #[test]
    fn tight_queues_reject_and_account_per_tenant() {
        let mut fe = front_end(2, 1, 1);
        fe.config = ServeConfig {
            queue_depth: 8,
            tenant_quota: 2,
            max_batch: 4,
            mean_gap_ps: 200,
        };
        let report = fe.serve(&TrafficSpec::sustained(2_000, 5)).expect("serves");
        assert!(
            report.rejected_queue_full + report.rejected_quota > 0,
            "tight config never rejected"
        );
        for account in &report.tenants {
            assert_eq!(
                account.submitted,
                account.admitted + account.rejected_queue_full + account.rejected_quota
            );
            assert_eq!(account.completed, account.admitted);
        }
        assert!(report.conserves());
    }

    #[test]
    fn histogram_quantiles_are_monotone_and_bucketed() {
        let mut h = LatencyHistogram::new();
        for ps in [1u64, 2, 3, 1000, 1000, 1000, 1_000_000] {
            h.record(ps);
        }
        assert_eq!(h.samples(), 7);
        assert!(h.quantile(0.5) <= h.quantile(0.99));
        // The 1000 ps samples land in [896, 1024): upper bound 1024 ps.
        assert_eq!(h.quantile(0.5), Time::from_pico_seconds(1024.0));
        assert_eq!(LatencyHistogram::new().quantile(0.5), Time::ZERO);
    }

    #[test]
    fn histogram_buckets_tile_the_axis_without_gaps() {
        // Bounds are contiguous and each sample lands inside its bucket.
        // The final bucket's upper bound saturates, so contiguity is
        // checked up to it.
        for index in 0..LatencyHistogram::NUM_BUCKETS - 1 {
            let (lower, upper) = LatencyHistogram::bucket_bounds(index);
            assert!(lower < upper, "bucket {index}");
            assert_eq!(upper, LatencyHistogram::bucket_bounds(index + 1).0);
        }
        for ps in (1u64..5000).chain([1 << 40, u64::MAX >> 1, u64::MAX]) {
            let mut h = LatencyHistogram::new();
            h.record(ps);
            let index = h.buckets.iter().position(|&c| c == 1).expect("recorded");
            let (lower, upper) = LatencyHistogram::bucket_bounds(index);
            assert!(lower <= ps && ps <= upper, "{ps} not in [{lower},{upper}]");
        }
    }
}
