//! The async-style serving front-end: queue, admission, batching,
//! backpressure, per-tenant accounting, latency histogram.
//!
//! [`ServeFrontEnd::serve`] replays a deterministic arrival process
//! against the fabric in **modelled time** (an integer picosecond
//! clock): queries arrive with seeded interarrival gaps, pass admission
//! control (a bounded queue plus a per-tenant quota — the backpressure
//! surface), and drain as cross-tenant batches into the deterministic
//! tile driver whenever the fabric is free. Each batch's modelled
//! service time is a pure function of the batch *content* (slowest
//! primitive in the batch, plus H-tree movement at modelled depth if
//! any operand is remote), never of the executed tile partition — so
//! the whole serve trace (who was admitted, how batches formed, every
//! latency) is bit-identical for any tile count and any thread count,
//! extending the fabric's determinism contract to the serving layer.
//!
//! Accounting is conserved at three granularities, all in exact count
//! space: per-tenant counts, per-tile counts, and the fabric counts
//! merge to the same totals, and the priced ledgers sum bit-for-bit
//! (dyadic unit prices; see `cim_units::counts`).

use std::collections::VecDeque;

use cim_sim::SimError;
use cim_units::{
    Component, CostLedger, CountLedger, DispatchObjective, Phase, ScaleTable, Time, UnitCosts,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use cim_arch::{TileCoord, TileGrid};

use crate::fabric::FabricExecutor;
use crate::host::{host_unit_costs, HostQueryExecutor};
use crate::query::{Query, QueryKind, TenantId, TrafficSpec};

/// Admission and batching parameters of the front-end.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ServeConfig {
    /// Queue capacity; arrivals beyond it are rejected (backpressure).
    pub queue_depth: usize,
    /// Maximum queued queries per tenant; the fairness half of
    /// admission control.
    pub tenant_quota: usize,
    /// Largest batch dispatched into the fabric at once.
    pub max_batch: usize,
    /// Mean modelled interarrival gap, in picoseconds.
    pub mean_gap_ps: u64,
}

impl ServeConfig {
    /// A sustained-overload default: arrivals (~0.5 query/ns) outpace
    /// single-query service (3.2–26.6 ns), so batches form, the queue
    /// fills, and admission control engages.
    pub fn sustained() -> Self {
        Self {
            queue_depth: 256,
            tenant_quota: 96,
            max_batch: 64,
            mean_gap_ps: 2_000,
        }
    }
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self::sustained()
    }
}

/// How the front-end routes admitted queries across the two machines.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub enum DispatchPolicy {
    /// Route every query to the crossbar fabric (the historical
    /// single-machine behaviour, and the default).
    #[default]
    AlwaysCim,
    /// Route every query to the conventional host.
    AlwaysHost,
    /// Route each query to whichever machine certified cost prefers
    /// under the objective, after applying per-machine calibration
    /// scales (identity scales score the raw certified prices).
    Hybrid {
        /// The axis being minimised.
        objective: DispatchObjective,
        /// Calibration scales applied to the fabric's prices.
        cim_scales: ScaleTable,
        /// Calibration scales applied to the host's prices.
        host_scales: ScaleTable,
    },
    /// Split each (kind × locality) cell's query stream *between* the
    /// machines instead of sending the whole cell to one side: the CIM
    /// lane share is the makespan-balancing proportion of the two
    /// calibrated certified per-query scores (a cell whose host score is
    /// `h` and CIM score is `c` routes `h/(c+h)` of its queries to the
    /// crossbar, so both machines finish a cell's stream together).
    /// Which lane a query occupies is a pure bit-mix of the query's own
    /// identity, so routing — like everything else in the serve trace —
    /// is bit-identical for any tile count and any thread count.
    SplitHybrid {
        /// The axis being minimised.
        objective: DispatchObjective,
        /// Calibration scales applied to the fabric's prices.
        cim_scales: ScaleTable,
        /// Calibration scales applied to the host's prices.
        host_scales: ScaleTable,
    },
}

impl DispatchPolicy {
    /// A hybrid policy with identity calibration under `objective`.
    pub fn hybrid(objective: DispatchObjective) -> Self {
        Self::Hybrid {
            objective,
            cim_scales: ScaleTable::identity(),
            host_scales: ScaleTable::identity(),
        }
    }

    /// A split-hybrid policy with identity calibration under
    /// `objective`.
    pub fn split_hybrid(objective: DispatchObjective) -> Self {
        Self::SplitHybrid {
            objective,
            cim_scales: ScaleTable::identity(),
            host_scales: ScaleTable::identity(),
        }
    }
}

/// Query kinds in route-table order.
const ROUTE_KINDS: [QueryKind; 3] = [QueryKind::Lookup, QueryKind::Compare, QueryKind::Add];

/// Index of a kind in the route table.
fn kind_index(kind: QueryKind) -> usize {
    match kind {
        QueryKind::Lookup => 0,
        QueryKind::Compare => 1,
        QueryKind::Add => 2,
    }
}

/// Routing decisions precomputed per (kind × locality) cell.
///
/// A query's charge laws ([`Query::charge_kind`],
/// [`Query::charge_host_kind`]) are pure functions of its kind and
/// operand locality, so the whole dispatch policy collapses to six
/// certified cost comparisons done once per serve run — dispatch inside
/// the serving loop is a table lookup, bit-identical for any thread
/// count by construction.
///
/// The `mispredict` plane compares the *calibrated* choice against the
/// choice the uncalibrated certified prices would have made; a set bit
/// means the calibration scales flipped this cell, which the report
/// surfaces as a misprediction count per completed query.
struct RouteTable {
    cim: [[bool; 2]; 3],
    mispredict: [[bool; 2]; 3],
    /// Present only under [`DispatchPolicy::SplitHybrid`]: per-cell CIM
    /// lane shares out of [`SPLIT_LANES`], calibrated and true.
    split: Option<SplitLanes>,
}

/// Lane granularity of the split-hybrid interleave: a cell's stream is
/// cut into this many identity-hashed lanes and the CIM side takes a
/// whole number of them.
const SPLIT_LANES: u64 = 64;

/// Per (kind × locality) CIM lane counts of a split-hybrid route table.
struct SplitLanes {
    calibrated: [[u64; 2]; 3],
    truth: [[u64; 2]; 3],
}

/// The lane a query occupies, a pure bit-mix (splitmix64 finalizer) of
/// the query's own identity — never of batch composition, tile count,
/// or thread count, preserving the serve-trace determinism contract.
fn split_lane(query: &Query) -> u64 {
    let mut z = query.id ^ query.seed.rotate_left(17) ^ (u64::from(query.tenant.0) << 48);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    (z ^ (z >> 31)) % SPLIT_LANES
}

/// CIM lane count balancing one cell's stream: with per-query scores
/// `c` (CIM) and `h` (host) and the halves running concurrently, giving
/// the crossbar `h/(c+h)` of the lanes makes both sides finish
/// together. Degenerate scores collapse to one machine (both-zero ties
/// go to the crossbar, the machine the fabric exists to exercise).
#[allow(
    clippy::cast_precision_loss,
    clippy::cast_possible_truncation,
    clippy::cast_sign_loss
)]
fn balanced_lanes(cim_score: f64, host_score: f64) -> u64 {
    if !cim_score.is_finite() || cim_score <= 0.0 {
        return SPLIT_LANES;
    }
    if !host_score.is_finite() || host_score <= 0.0 {
        return 0;
    }
    let share = host_score / (cim_score + host_score);
    ((share * SPLIT_LANES as f64).round() as u64).min(SPLIT_LANES)
}

impl RouteTable {
    fn build(policy: &DispatchPolicy, fabric: &FabricExecutor) -> Self {
        match policy {
            DispatchPolicy::AlwaysCim => Self {
                cim: [[true; 2]; 3],
                mispredict: [[false; 2]; 3],
                split: None,
            },
            DispatchPolicy::AlwaysHost => Self {
                cim: [[false; 2]; 3],
                mispredict: [[false; 2]; 3],
                split: None,
            },
            DispatchPolicy::Hybrid {
                objective,
                cim_scales,
                host_scales,
            } => {
                let cim_true = fabric.prices();
                let host_true = host_unit_costs();
                let cim_scaled = cim_scales.rescale(cim_true);
                let host_scaled = host_scales.rescale(&host_true);
                let score = |prices: &UnitCosts, counts: &CountLedger| {
                    let ledger = prices.evaluate(counts);
                    objective.score(ledger.total_energy(), ledger.total_time())
                };
                let mut cim = [[false; 2]; 3];
                let mut mispredict = [[false; 2]; 3];
                for kind in ROUTE_KINDS {
                    for (slot, local) in [false, true].into_iter().enumerate() {
                        let mut cim_counts = CountLedger::new();
                        Query::charge_kind(&mut cim_counts, &fabric.grid, kind, local);
                        let mut host_counts = CountLedger::new();
                        Query::charge_host_kind(&mut host_counts, kind);
                        // Ties go to the crossbar: it is the machine the
                        // fabric exists to exercise.
                        let predicted =
                            score(&cim_scaled, &cim_counts) <= score(&host_scaled, &host_counts);
                        let truth = score(cim_true, &cim_counts) <= score(&host_true, &host_counts);
                        cim[kind_index(kind)][slot] = predicted;
                        mispredict[kind_index(kind)][slot] = predicted != truth;
                    }
                }
                Self {
                    cim,
                    mispredict,
                    split: None,
                }
            }
            DispatchPolicy::SplitHybrid {
                objective,
                cim_scales,
                host_scales,
            } => {
                let cim_true = fabric.prices();
                let host_true = host_unit_costs();
                let cim_scaled = cim_scales.rescale(cim_true);
                let host_scaled = host_scales.rescale(&host_true);
                let score = |prices: &UnitCosts, counts: &CountLedger| {
                    let ledger = prices.evaluate(counts);
                    objective.score(ledger.total_energy(), ledger.total_time())
                };
                let mut calibrated = [[0u64; 2]; 3];
                let mut truth = [[0u64; 2]; 3];
                for kind in ROUTE_KINDS {
                    for (slot, local) in [false, true].into_iter().enumerate() {
                        let mut cim_counts = CountLedger::new();
                        Query::charge_kind(&mut cim_counts, &fabric.grid, kind, local);
                        let mut host_counts = CountLedger::new();
                        Query::charge_host_kind(&mut host_counts, kind);
                        calibrated[kind_index(kind)][slot] = balanced_lanes(
                            score(&cim_scaled, &cim_counts),
                            score(&host_scaled, &host_counts),
                        );
                        truth[kind_index(kind)][slot] = balanced_lanes(
                            score(cim_true, &cim_counts),
                            score(&host_true, &host_counts),
                        );
                    }
                }
                Self {
                    cim: [[false; 2]; 3],
                    mispredict: [[false; 2]; 3],
                    split: Some(SplitLanes { calibrated, truth }),
                }
            }
        }
    }

    fn to_cim(&self, query: &Query, grid: &TileGrid) -> bool {
        let (kind, slot) = (kind_index(query.kind), usize::from(query.is_local(grid)));
        match &self.split {
            Some(lanes) => split_lane(query) < lanes.calibrated[kind][slot],
            None => self.cim[kind][slot],
        }
    }

    fn mispredicted(&self, query: &Query, grid: &TileGrid) -> bool {
        let (kind, slot) = (kind_index(query.kind), usize::from(query.is_local(grid)));
        match &self.split {
            Some(lanes) => {
                let lane = split_lane(query);
                (lane < lanes.calibrated[kind][slot]) != (lane < lanes.truth[kind][slot])
            }
            None => self.mispredict[kind][slot],
        }
    }
}

/// Log-bucketed latency histogram over modelled picoseconds: four
/// sub-buckets per power of two (HdrHistogram-style, ~19% worst-case
/// resolution), which is enough for p50 and p99 to separate within one
/// service-time binade.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LatencyHistogram {
    /// Bucket counts; see [`LatencyHistogram::bucket_bounds`] for the
    /// `[lower, upper)` picosecond range of each index.
    pub buckets: Vec<u64>,
}

impl LatencyHistogram {
    /// Number of buckets: 3 exact sub-4 ps buckets plus 4 sub-buckets
    /// per binade up to `u64::MAX` (whose bucket index is 250).
    pub const NUM_BUCKETS: usize = 251;

    /// An empty histogram.
    pub fn new() -> Self {
        Self {
            buckets: vec![0; Self::NUM_BUCKETS],
        }
    }

    /// Bucket index of a latency: exact below 4 ps, then
    /// `(exponent, 2-bit mantissa)` pairs.
    fn bucket(latency_ps: u64) -> usize {
        let ps = latency_ps.max(1);
        let exponent = ps.ilog2() as usize;
        if exponent < 2 {
            ps as usize - 1
        } else {
            let mantissa = ((ps >> (exponent - 2)) & 3) as usize;
            3 + (exponent - 2) * 4 + mantissa
        }
    }

    /// `[lower, upper)` picosecond bounds of bucket `index`. The final
    /// bucket's upper bound saturates to `u64::MAX` (its true bound,
    /// 2^64, does not fit in a `u64`).
    pub fn bucket_bounds(index: usize) -> (u64, u64) {
        if index < 3 {
            (index as u64 + 1, index as u64 + 2)
        } else {
            let exponent = (index - 3) / 4;
            let mantissa = ((index - 3) % 4) as u128;
            let clamp = |v: u128| u64::try_from(v).unwrap_or(u64::MAX);
            (
                clamp((4 + mantissa) << exponent),
                clamp((5 + mantissa) << exponent),
            )
        }
    }

    /// Records one latency.
    pub fn record(&mut self, latency_ps: u64) {
        self.buckets[Self::bucket(latency_ps)] += 1;
    }

    /// Total recorded samples.
    pub fn samples(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// The `q`-quantile (0 < q ≤ 1) as the upper bound of the first
    /// bucket whose cumulative count reaches it, or [`Time::ZERO`] when
    /// empty. Bucket resolution (~19%) is the histogram's contract;
    /// p50/p99 are read through this.
    pub fn quantile(&self, q: f64) -> Time {
        let total = self.samples();
        if total == 0 {
            return Time::ZERO;
        }
        let rank = (q * total as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &count) in self.buckets.iter().enumerate() {
            seen += count;
            if seen >= rank {
                return Time::from_pico_seconds(Self::bucket_bounds(i).1 as f64);
            }
        }
        Time::from_pico_seconds(2f64.powi(64))
    }
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

/// Per-tenant serving account.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TenantAccount {
    /// The tenant.
    pub tenant: TenantId,
    /// Queries this tenant submitted.
    pub submitted: u64,
    /// Queries admitted past both gates.
    pub admitted: u64,
    /// Rejections because the shared queue was full.
    pub rejected_queue_full: u64,
    /// Rejections because the tenant exceeded its quota.
    pub rejected_quota: u64,
    /// Queries completed by the fabric.
    pub completed: u64,
    /// Completed queries routed to the crossbar fabric.
    pub cim_queries: u64,
    /// Completed queries routed to the conventional host.
    pub host_queries: u64,
    /// Exact op counts attributed to this tenant (both machines; the
    /// two charge into disjoint component cells).
    pub counts: CountLedger,
    /// Priced per-tenant ledger (`evaluate(counts)` under the combined
    /// fabric-plus-host price table).
    pub ledger: CostLedger,
}

/// Per-tile serving account (aggregated over all batches).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TileAccount {
    /// The tile.
    pub tile: TileCoord,
    /// Queries this tile executed.
    pub queries: u64,
    /// Exact op counts this tile accumulated.
    pub counts: CountLedger,
    /// Priced per-tile ledger (`evaluate(counts)`; these sum
    /// bit-for-bit to [`ServeReport::fabric_ledger`]).
    pub ledger: CostLedger,
}

/// Everything one serve run produced.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServeReport {
    /// Queries submitted (the traffic size).
    pub submitted: u64,
    /// Queries admitted.
    pub admitted: u64,
    /// Rejections: shared queue full.
    pub rejected_queue_full: u64,
    /// Rejections: tenant over quota.
    pub rejected_quota: u64,
    /// Queries completed (equals `admitted`; the queue drains fully).
    pub completed: u64,
    /// Completed queries routed to the crossbar fabric.
    pub cim_queries: u64,
    /// Completed queries routed to the conventional host.
    pub host_queries: u64,
    /// Completed queries whose route-table cell was flipped by the
    /// calibration scales relative to the uncalibrated certified
    /// choice — the serving layer's misprediction counter.
    pub mispredictions: u64,
    /// Batches dispatched.
    pub batches: u64,
    /// Deepest queue occupancy observed (backpressure evidence).
    pub peak_queue: usize,
    /// Modelled end-to-end makespan (last batch completion).
    pub makespan: Time,
    /// Modelled throughput: completed queries per makespan second.
    pub throughput_qps: f64,
    /// End-to-end latency histogram over completed queries.
    pub histogram: LatencyHistogram,
    /// Per-tenant accounts, in tenant order.
    pub tenants: Vec<TenantAccount>,
    /// Per-tile accounts, in tile order.
    pub tiles: Vec<TileAccount>,
    /// Exact fabric-wide counts (merge of the tile counts, and of the
    /// tenant counts).
    pub fabric_counts: CountLedger,
    /// The fabric ledger: `evaluate(fabric_counts)` — bit-equal to the
    /// sum of the per-tile ledgers.
    pub fabric_ledger: CostLedger,
    /// Exact op counts charged by host-routed queries (merge of the
    /// host share of the tenant counts).
    pub host_counts: CountLedger,
    /// The host ledger: `evaluate(host_counts)`; fabric and host
    /// ledgers together sum bit-for-bit to the tenant ledgers.
    pub host_ledger: CostLedger,
    /// Order-insensitive checksum over completed queries' results
    /// (machine-independent: both machines compute the same values).
    pub checksum: u64,
}

impl ServeReport {
    /// p50 modelled latency.
    pub fn p50(&self) -> Time {
        self.histogram.quantile(0.50)
    }

    /// p99 modelled latency.
    pub fn p99(&self) -> Time {
        self.histogram.quantile(0.99)
    }

    /// True when every conservation invariant holds bit-for-bit:
    /// tile counts merge to the fabric counts and tile ledgers sum to
    /// the fabric ledger; tenant counts merge to the fabric *plus* host
    /// counts and tenant ledgers sum to the fabric plus host ledgers.
    /// The cross-machine halves are exact because the two machines
    /// charge disjoint component cells and every per-cell product is a
    /// dyadic price times an in-range exact count.
    pub fn conserves(&self) -> bool {
        let mut tile_counts = CountLedger::new();
        let mut tile_ledgers = CostLedger::new();
        for tile in &self.tiles {
            tile_counts.merge(&tile.counts);
            tile_ledgers.merge(&tile.ledger);
        }
        let mut tenant_counts = CountLedger::new();
        let mut tenant_ledgers = CostLedger::new();
        for tenant in &self.tenants {
            tenant_counts.merge(&tenant.counts);
            tenant_ledgers.merge(&tenant.ledger);
        }
        let mut machine_counts = self.fabric_counts.clone();
        machine_counts.merge(&self.host_counts);
        let mut machine_ledgers = self.fabric_ledger.clone();
        machine_ledgers.merge(&self.host_ledger);
        tile_counts == self.fabric_counts
            && tenant_counts == machine_counts
            && tile_ledgers == self.fabric_ledger
            && tenant_ledgers == machine_ledgers
    }
}

/// The serving front-end: a fabric plus admission/batching policy and
/// a dispatch policy choosing between the two machines.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServeFrontEnd {
    /// The crossbar execution substrate.
    pub fabric: FabricExecutor,
    /// Queue/admission/batching parameters.
    pub config: ServeConfig,
    /// Per-query routing across the two machines.
    pub policy: DispatchPolicy,
}

/// All mutable serving state, threaded through the batch dispatcher.
struct ServeState {
    queue: VecDeque<(Query, u64)>,
    tenant_queued: Vec<usize>,
    accounts: Vec<TenantAccount>,
    tiles: Vec<TileAccount>,
    histogram: LatencyHistogram,
    fabric_counts: CountLedger,
    host_counts: CountLedger,
    checksum: u64,
    batches: u64,
    completed: u64,
    peak_queue: usize,
    cim_queries: u64,
    host_queries: u64,
    mispredictions: u64,
}

impl ServeFrontEnd {
    /// Modelled service time of one batch, in picoseconds: the slowest
    /// primitive latency present in the batch, plus one H-tree traversal
    /// at modelled depth if any operand is remote. A pure function of
    /// the batch content — deliberately independent of the executed
    /// tile partition, preserving cross-tile-count determinism.
    fn batch_service_ps(&self, batch: &[Query]) -> u64 {
        let grid = &self.fabric.grid;
        let mut service = 0u64;
        let mut any_remote = false;
        for query in batch {
            let latency = match query.kind {
                QueryKind::Lookup | QueryKind::Compare => {
                    cim_arch::CimOp::Comparator.cost(&grid.tech).latency
                }
                QueryKind::Add => {
                    cim_arch::CimOp::TcAdder {
                        bits: crate::query::ADD_BITS,
                    }
                    .cost(&grid.tech)
                    .latency
                }
            };
            service = service.max((latency.get() * 1e12).round() as u64);
            any_remote |= !query.is_local(grid);
        }
        if any_remote {
            service +=
                grid.route_hops() * (grid.interconnect.hop_latency.get() * 1e12).round() as u64;
        }
        service.max(1)
    }

    /// Rejects degenerate configurations before any query is served:
    /// a zero queue depth or tenant quota admits nothing, a zero batch
    /// size dispatches nothing, and an empty tile set has nowhere to
    /// execute — all would hang or divide by zero downstream, so they
    /// surface as typed [`SimError::InvalidConfig`] errors instead.
    fn validate(&self) -> Result<(), SimError> {
        let invalid = |detail: &str| SimError::InvalidConfig {
            machine: FabricExecutor::MACHINE,
            detail: detail.to_string(),
        };
        if self.config.queue_depth == 0 {
            return Err(invalid("queue_depth is zero; no query can be admitted"));
        }
        if self.config.tenant_quota == 0 {
            return Err(invalid("tenant_quota is zero; no tenant can be admitted"));
        }
        if self.config.max_batch == 0 {
            return Err(invalid("max_batch is zero; no batch can be dispatched"));
        }
        if self.fabric.grid.tiles() == 0 {
            return Err(invalid(
                "tile set is empty; the fabric has nowhere to execute",
            ));
        }
        Ok(())
    }

    /// The combined price table tenant ledgers are evaluated against:
    /// the fabric's cells verbatim plus the host's `GateDynamic` /
    /// `CacheAccess` cells. The two machines charge disjoint component
    /// cells, so one table prices a tenant's mixed-machine counts in a
    /// single pass and the ledgers still conserve bit-for-bit.
    fn serve_prices(&self) -> UnitCosts {
        let mut prices = self.fabric.prices().clone();
        let host = host_unit_costs();
        for phase in [Phase::Index, Phase::Map, Phase::Add] {
            for component in [Component::GateDynamic, Component::CacheAccess] {
                prices.set(
                    component,
                    phase,
                    host.unit_energy(component, phase),
                    host.unit_time(component, phase),
                );
            }
        }
        prices
    }

    /// One batch: pop up to `max_batch` in FIFO order (cross-tenant),
    /// split it across the two machines per the route table, execute
    /// both halves, and account everything. The batch's service time is
    /// the slower of the two machine services — the halves run
    /// concurrently and the front-end waits for both.
    fn dispatch_batch(
        &self,
        state: &mut ServeState,
        routes: &RouteTable,
        start: u64,
    ) -> Result<u64, SimError> {
        let take = state.queue.len().min(self.config.max_batch);
        let mut batch = Vec::with_capacity(take);
        let mut cim_batch = Vec::new();
        let mut host_batch = Vec::new();
        for _ in 0..take {
            let (query, arrived) = state.queue.pop_front().expect("len checked");
            state.tenant_queued[query.tenant.0 as usize] -= 1;
            let to_cim = routes.to_cim(&query, &self.fabric.grid);
            if to_cim {
                cim_batch.push(query);
            } else {
                host_batch.push(query);
            }
            batch.push((query, arrived, to_cim));
        }
        let cim_outcome = if cim_batch.is_empty() {
            None
        } else {
            Some(self.fabric.execute(&cim_batch)?)
        };
        let host_outcome = if host_batch.is_empty() {
            None
        } else {
            Some(HostQueryExecutor.execute(&host_batch))
        };
        let cim_service = if cim_batch.is_empty() {
            0
        } else {
            self.batch_service_ps(&cim_batch)
        };
        let service = cim_service
            .max(HostQueryExecutor.service_ps(&host_batch))
            .max(1);
        let completion = start + service;
        for (query, arrived, to_cim) in &batch {
            state.histogram.record(completion - arrived);
            let account = &mut state.accounts[query.tenant.0 as usize];
            account.completed += 1;
            if *to_cim {
                account.cim_queries += 1;
                state.cim_queries += 1;
                query.charge(&mut account.counts, &self.fabric.grid);
            } else {
                account.host_queries += 1;
                state.host_queries += 1;
                query.charge_host(&mut account.counts);
            }
            if routes.mispredicted(query, &self.fabric.grid) {
                state.mispredictions += 1;
            }
        }
        if let Some(outcome) = cim_outcome {
            for tile_outcome in &outcome.tiles {
                let index = self.fabric.grid.index_of(tile_outcome.tile) as usize;
                state.tiles[index].queries += tile_outcome.queries;
                state.tiles[index].counts.merge(&tile_outcome.counts);
            }
            state.fabric_counts.merge(&outcome.counts);
            state.checksum = state
                .checksum
                .wrapping_add(outcome.digest.checksum.expect("fabric always checksums"));
        }
        if let Some(outcome) = host_outcome {
            state.host_counts.merge(&outcome.counts);
            state.checksum = state.checksum.wrapping_add(outcome.checksum);
        }
        state.batches += 1;
        state.completed += take as u64;
        Ok(completion)
    }

    /// Replays `traffic` through admission control and both machines,
    /// producing the full serving report. Deterministic: bit-identical
    /// for any executed tile count and host thread count.
    pub fn serve(&self, traffic: &TrafficSpec) -> Result<ServeReport, SimError> {
        self.validate()?;
        let routes = RouteTable::build(&self.policy, &self.fabric);
        let queries = traffic.generate();
        let tenants = traffic.tenants.max(1) as usize;
        let mut gap_rng = StdRng::seed_from_u64(traffic.seed ^ 0x5E7E_5E7E_5E7E_5E7E);

        let mut state = ServeState {
            queue: VecDeque::new(),
            tenant_queued: vec![0usize; tenants],
            accounts: (0..tenants)
                .map(|t| TenantAccount {
                    tenant: TenantId(t as u32),
                    submitted: 0,
                    admitted: 0,
                    rejected_queue_full: 0,
                    rejected_quota: 0,
                    completed: 0,
                    cim_queries: 0,
                    host_queries: 0,
                    counts: CountLedger::new(),
                    ledger: CostLedger::new(),
                })
                .collect(),
            tiles: (0..self.fabric.grid.tiles())
                .map(|i| TileAccount {
                    tile: self.fabric.grid.coord_of(i),
                    queries: 0,
                    counts: CountLedger::new(),
                    ledger: CostLedger::new(),
                })
                .collect(),
            histogram: LatencyHistogram::new(),
            fabric_counts: CountLedger::new(),
            host_counts: CountLedger::new(),
            checksum: 0,
            batches: 0,
            completed: 0,
            peak_queue: 0,
            cim_queries: 0,
            host_queries: 0,
            mispredictions: 0,
        };
        let (mut free_at, mut clock) = (0u64, 0u64);

        for query in &queries {
            clock += 1 + gap_rng.gen::<u64>() % (2 * self.config.mean_gap_ps.max(1) - 1);
            // Drain whatever the machines can finish before this arrival.
            while !state.queue.is_empty() && free_at <= clock {
                let start = free_at.max(state.queue.front().expect("non-empty").1);
                free_at = self.dispatch_batch(&mut state, &routes, start)?;
            }
            // Admission control: shared queue bound, then tenant quota.
            let tenant = query.tenant.0 as usize;
            state.accounts[tenant].submitted += 1;
            if state.queue.len() >= self.config.queue_depth {
                state.accounts[tenant].rejected_queue_full += 1;
                continue;
            }
            if state.tenant_queued[tenant] >= self.config.tenant_quota {
                state.accounts[tenant].rejected_quota += 1;
                continue;
            }
            state.accounts[tenant].admitted += 1;
            state.tenant_queued[tenant] += 1;
            state.queue.push_back((*query, clock));
            state.peak_queue = state.peak_queue.max(state.queue.len());
            // An idle back-end serves the arrival immediately; a busy
            // one lets the queue build (that is where batches come from).
            if free_at <= clock {
                free_at = self.dispatch_batch(&mut state, &routes, clock)?;
            }
        }
        // Drain the tail.
        while !state.queue.is_empty() {
            let start = free_at.max(state.queue.front().expect("non-empty").1);
            free_at = self.dispatch_batch(&mut state, &routes, start)?;
        }

        let prices = self.serve_prices();
        let fabric_prices = self.fabric.prices();
        for account in &mut state.accounts {
            account.ledger = prices.evaluate(&account.counts);
        }
        for tile in &mut state.tiles {
            tile.ledger = fabric_prices.evaluate(&tile.counts);
        }
        let fabric_ledger = fabric_prices.evaluate(&state.fabric_counts);
        let host_ledger = prices.evaluate(&state.host_counts);
        let makespan = Time::from_pico_seconds(free_at as f64);
        let (rejected_queue_full, rejected_quota) =
            state.accounts.iter().fold((0, 0), |(f, q), a| {
                (f + a.rejected_queue_full, q + a.rejected_quota)
            });
        Ok(ServeReport {
            submitted: queries.len() as u64,
            admitted: state.completed,
            rejected_queue_full,
            rejected_quota,
            completed: state.completed,
            cim_queries: state.cim_queries,
            host_queries: state.host_queries,
            mispredictions: state.mispredictions,
            batches: state.batches,
            peak_queue: state.peak_queue,
            makespan,
            throughput_qps: if free_at == 0 {
                0.0
            } else {
                state.completed as f64 / makespan.get()
            },
            histogram: state.histogram,
            tenants: state.accounts,
            tiles: state.tiles,
            fabric_counts: state.fabric_counts,
            fabric_ledger,
            host_counts: state.host_counts,
            host_ledger,
            checksum: state.checksum,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cim_sim::BatchPolicy;

    fn front_end(rows: u32, cols: u32, threads: usize) -> ServeFrontEnd {
        ServeFrontEnd {
            fabric: FabricExecutor::paper(rows, cols, BatchPolicy::with_threads(threads)),
            config: ServeConfig::sustained(),
            policy: DispatchPolicy::AlwaysCim,
        }
    }

    #[test]
    fn sustained_traffic_saturates_and_batches() {
        let report = front_end(2, 2, 1)
            .serve(&TrafficSpec::sustained(3_000, 17))
            .expect("serves");
        assert_eq!(report.submitted, 3_000);
        assert_eq!(report.completed, report.admitted);
        assert!(report.conserves(), "conservation failed");
        // Overload dynamics: batching kicks in (fewer batches than
        // queries) and the queue visibly builds.
        assert!(report.batches < report.completed, "no batching happened");
        assert!(report.peak_queue > 8, "queue never built");
        assert!(report.histogram.samples() == report.completed);
        assert!(report.p99() >= report.p50());
        assert!(report.throughput_qps > 0.0);
    }

    #[test]
    fn serve_trace_is_bit_identical_across_tiles_and_threads() {
        let traffic = TrafficSpec::sustained(1_500, 23);
        let reference = front_end(1, 1, 1).serve(&traffic).expect("reference");
        for (rows, cols) in [(1, 2), (2, 2)] {
            for threads in [1, 4] {
                let report = front_end(rows, cols, threads).serve(&traffic).expect("run");
                assert_eq!(report.checksum, reference.checksum);
                assert_eq!(report.fabric_counts, reference.fabric_counts);
                assert_eq!(report.fabric_ledger, reference.fabric_ledger);
                assert_eq!(report.histogram, reference.histogram);
                assert_eq!(report.tenants, reference.tenants);
                assert_eq!(
                    (
                        report.admitted,
                        report.rejected_queue_full,
                        report.rejected_quota
                    ),
                    (
                        reference.admitted,
                        reference.rejected_queue_full,
                        reference.rejected_quota
                    )
                );
                assert_eq!(report.makespan, reference.makespan);
            }
        }
    }

    #[test]
    fn tight_queues_reject_and_account_per_tenant() {
        let mut fe = front_end(2, 1, 1);
        fe.config = ServeConfig {
            queue_depth: 8,
            tenant_quota: 2,
            max_batch: 4,
            mean_gap_ps: 200,
        };
        let report = fe.serve(&TrafficSpec::sustained(2_000, 5)).expect("serves");
        assert!(
            report.rejected_queue_full + report.rejected_quota > 0,
            "tight config never rejected"
        );
        for account in &report.tenants {
            assert_eq!(
                account.submitted,
                account.admitted + account.rejected_queue_full + account.rejected_quota
            );
            assert_eq!(account.completed, account.admitted);
        }
        assert!(report.conserves());
    }

    #[test]
    fn degenerate_configs_are_rejected_with_typed_errors() {
        let traffic = TrafficSpec::sustained(10, 1);
        for (config, needle) in [
            (
                ServeConfig {
                    queue_depth: 0,
                    ..ServeConfig::sustained()
                },
                "queue_depth",
            ),
            (
                ServeConfig {
                    tenant_quota: 0,
                    ..ServeConfig::sustained()
                },
                "tenant_quota",
            ),
            (
                ServeConfig {
                    max_batch: 0,
                    ..ServeConfig::sustained()
                },
                "max_batch",
            ),
        ] {
            let mut fe = front_end(1, 1, 1);
            fe.config = config;
            let err = fe.serve(&traffic).expect_err("must reject");
            let rendered = err.to_string();
            assert!(
                matches!(err, SimError::InvalidConfig { .. }),
                "wrong variant: {rendered}"
            );
            assert!(rendered.contains(needle), "{rendered}");
            assert!(rendered.contains("cim-fabric"), "{rendered}");
        }
    }

    #[test]
    fn hybrid_routing_splits_by_certified_cost_and_conserves() {
        let traffic = TrafficSpec::sustained(2_000, 11);
        let mut fe = front_end(2, 2, 1);
        fe.policy = DispatchPolicy::hybrid(DispatchObjective::Energy);
        let report = fe.serve(&traffic).expect("serves");
        // The certified prices send memory-bound lookups/compares to
        // the crossbar and register-resident adds to the host.
        assert!(report.cim_queries > 0, "no CIM traffic");
        assert!(report.host_queries > 0, "no host traffic");
        assert_eq!(report.cim_queries + report.host_queries, report.completed);
        // Identity calibration never disagrees with the true prices.
        assert_eq!(report.mispredictions, 0);
        // Results are machine-independent and accounting still
        // conserves bit-for-bit across both machines.
        let always_cim = front_end(2, 2, 1).serve(&traffic).expect("serves");
        assert_eq!(report.checksum, always_cim.checksum);
        assert!(report.conserves(), "hybrid conservation failed");
        // Per-tenant routing tallies roll up to the report totals.
        let (cim, host) = report
            .tenants
            .iter()
            .fold((0, 0), |(c, h), t| (c + t.cim_queries, h + t.host_queries));
        assert_eq!((cim, host), (report.cim_queries, report.host_queries));
        // Hybrid routing strictly beats single-machine energy here:
        // adds stop paying the crossbar's controller broadcast, while
        // compares keep avoiding the host's cache traffic.
        let hybrid_energy =
            (report.fabric_ledger.total_energy() + report.host_ledger.total_energy()).get();
        let cim_energy = always_cim.fabric_ledger.total_energy().get();
        let mut always_host = front_end(2, 2, 1);
        always_host.policy = DispatchPolicy::AlwaysHost;
        let host_report = always_host.serve(&traffic).expect("serves");
        assert!(host_report.conserves(), "host conservation failed");
        assert_eq!(host_report.checksum, always_cim.checksum);
        let host_energy = host_report.host_ledger.total_energy().get();
        assert!(
            hybrid_energy < cim_energy,
            "{hybrid_energy} !< {cim_energy}"
        );
        assert!(
            hybrid_energy < host_energy,
            "{hybrid_energy} !< {host_energy}"
        );
    }

    #[test]
    fn skewed_calibration_flips_routes_and_counts_mispredictions() {
        // Inflate the crossbar's comparator price a millionfold: the
        // calibrated table now sends compares to the host, and every
        // such completion is counted as a misprediction relative to
        // the true certified prices.
        let mut cim_scales = ScaleTable::identity();
        for phase in [Phase::Index, Phase::Map] {
            cim_scales.set(Component::ImplyStep, phase, 1e6, 1.0);
        }
        let mut fe = front_end(2, 2, 1);
        fe.policy = DispatchPolicy::Hybrid {
            objective: DispatchObjective::Energy,
            cim_scales,
            host_scales: ScaleTable::identity(),
        };
        let report = fe.serve(&TrafficSpec::sustained(1_000, 9)).expect("serves");
        assert_eq!(report.cim_queries, 0, "everything should flee the crossbar");
        // Only the flipped cells mispredict: lookups/compares (now on
        // the host against the true prices' advice) count, adds (host
        // either way) do not.
        assert!(report.mispredictions > 0, "skew never mispredicted");
        assert!(
            report.mispredictions < report.host_queries,
            "adds were wrongly counted as mispredictions"
        );
        assert!(report.conserves());
    }

    #[test]
    fn split_hybrid_uses_both_machines_per_cell_and_conserves() {
        let traffic = TrafficSpec::sustained(2_000, 11);
        let mut fe = front_end(2, 2, 1);
        fe.policy = DispatchPolicy::split_hybrid(DispatchObjective::Makespan);
        let report = fe.serve(&traffic).expect("serves");
        assert!(report.cim_queries > 0, "no CIM traffic");
        assert!(report.host_queries > 0, "no host traffic");
        assert_eq!(report.cim_queries + report.host_queries, report.completed);
        // Identity calibration never disagrees with the true shares.
        assert_eq!(report.mispredictions, 0);
        assert!(report.conserves(), "split-hybrid conservation failed");
        // Results stay machine-independent: the same traffic computes
        // the same checksum however the stream is interleaved.
        let always_cim = front_end(2, 2, 1).serve(&traffic).expect("serves");
        assert_eq!(report.checksum, always_cim.checksum);
        // Splitting genuinely interleaves: the whole-cell hybrid sends
        // each cell to exactly one machine, so its routing tallies
        // differ from the lane-interleaved split of the same traffic.
        let mut whole = front_end(2, 2, 1);
        whole.policy = DispatchPolicy::hybrid(DispatchObjective::Makespan);
        let whole_report = whole.serve(&traffic).expect("serves");
        assert_ne!(
            (report.cim_queries, report.host_queries),
            (whole_report.cim_queries, whole_report.host_queries),
            "split-hybrid degenerated into whole-cell routing"
        );
    }

    #[test]
    fn split_hybrid_trace_is_bit_identical_across_tiles_and_threads() {
        let traffic = TrafficSpec::sustained(1_500, 23);
        let mut reference_fe = front_end(1, 1, 1);
        reference_fe.policy = DispatchPolicy::split_hybrid(DispatchObjective::Makespan);
        let reference = reference_fe.serve(&traffic).expect("reference");
        for (rows, cols) in [(1, 2), (2, 2)] {
            for threads in [1, 4] {
                let mut fe = front_end(rows, cols, threads);
                fe.policy = DispatchPolicy::split_hybrid(DispatchObjective::Makespan);
                let report = fe.serve(&traffic).expect("run");
                assert_eq!(report.checksum, reference.checksum);
                assert_eq!(
                    (report.cim_queries, report.host_queries),
                    (reference.cim_queries, reference.host_queries)
                );
                assert_eq!(report.fabric_counts, reference.fabric_counts);
                assert_eq!(report.host_counts, reference.host_counts);
                assert_eq!(report.tenants, reference.tenants);
                assert_eq!(report.histogram, reference.histogram);
                assert_eq!(report.makespan, reference.makespan);
            }
        }
    }

    #[test]
    fn skewed_calibration_shifts_split_shares_and_counts_mispredictions() {
        // Inflate every crossbar price a millionfold: the calibrated
        // shares collapse toward the host, and each query whose lane
        // changed sides relative to the true shares is counted.
        let mut cim_scales = ScaleTable::identity();
        for phase in [Phase::Index, Phase::Map, Phase::Add] {
            for component in [
                Component::ImplyStep,
                Component::Controller,
                Component::Interconnect,
            ] {
                cim_scales.set(component, phase, 1e6, 1e6);
            }
        }
        let traffic = TrafficSpec::sustained(1_000, 9);
        let mut fe = front_end(2, 2, 1);
        fe.policy = DispatchPolicy::SplitHybrid {
            objective: DispatchObjective::Makespan,
            cim_scales: cim_scales.clone(),
            host_scales: ScaleTable::identity(),
        };
        let skewed = fe.serve(&traffic).expect("serves");
        let mut honest_fe = front_end(2, 2, 1);
        honest_fe.policy = DispatchPolicy::split_hybrid(DispatchObjective::Makespan);
        let honest = honest_fe.serve(&traffic).expect("serves");
        assert!(
            skewed.cim_queries < honest.cim_queries,
            "skew never shifted the shares ({} !< {})",
            skewed.cim_queries,
            honest.cim_queries
        );
        assert!(skewed.mispredictions > 0, "skew never mispredicted");
        assert!(skewed.conserves());
        assert_eq!(skewed.checksum, honest.checksum);
    }

    #[test]
    fn histogram_quantiles_are_monotone_and_bucketed() {
        let mut h = LatencyHistogram::new();
        for ps in [1u64, 2, 3, 1000, 1000, 1000, 1_000_000] {
            h.record(ps);
        }
        assert_eq!(h.samples(), 7);
        assert!(h.quantile(0.5) <= h.quantile(0.99));
        // The 1000 ps samples land in [896, 1024): upper bound 1024 ps.
        assert_eq!(h.quantile(0.5), Time::from_pico_seconds(1024.0));
        assert_eq!(LatencyHistogram::new().quantile(0.5), Time::ZERO);
    }

    #[test]
    fn histogram_buckets_tile_the_axis_without_gaps() {
        // Bounds are contiguous and each sample lands inside its bucket.
        // The final bucket's upper bound saturates, so contiguity is
        // checked up to it.
        for index in 0..LatencyHistogram::NUM_BUCKETS - 1 {
            let (lower, upper) = LatencyHistogram::bucket_bounds(index);
            assert!(lower < upper, "bucket {index}");
            assert_eq!(upper, LatencyHistogram::bucket_bounds(index + 1).0);
        }
        for ps in (1u64..5000).chain([1 << 40, u64::MAX >> 1, u64::MAX]) {
            let mut h = LatencyHistogram::new();
            h.record(ps);
            let index = h.buckets.iter().position(|&c| c == 1).expect("recorded");
            let (lower, upper) = LatencyHistogram::bucket_bounds(index);
            assert!(lower <= ps && ps <= upper, "{ps} not in [{lower},{upper}]");
        }
    }
}
