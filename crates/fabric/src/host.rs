//! The host machine's side of the serving fabric: prices, execution,
//! and service times for queries routed *away* from the crossbar.
//!
//! The hybrid dispatcher needs both machines priced in the same
//! currency — exact counts times dyadic unit prices — so this module is
//! the conventional-machine twin of [`crate::model`]: one
//! [`UnitCosts`] table built from the paper's Table-1 CMOS constants
//! ([`host_unit_costs`]), one executor that runs host-routed queries
//! with plain host arithmetic ([`HostQueryExecutor`]), and a
//! service-time model mirroring the fabric's batch-content rule.
//!
//! The cost asymmetry that makes hybrid dispatch non-trivial lives
//! here. Lookups and compares walk a memory-resident reference window,
//! so every comparison pays **two operand fetches through the shared
//! 8 kB cache** at the paper's locality-hostile 50% hit rate (~505 pJ
//! expected per access) — which is why the crossbar wins them by four
//! orders of magnitude. Adds carry both operands *in the request
//! payload*: the host serves them register-resident, one ClaAdder
//! switch (~510 aJ) with **no** memory traffic, which is why the host
//! wins adds over the CRS adder's 256 fJ + 133 controller broadcast
//! steps. One machine per kind, decided by certified cost, not by rule.

use cim_arch::{ClaAdder, ConventionalMachine};
use cim_units::{Component, CountLedger, Phase, UnitCosts};
use serde::{Deserialize, Serialize};

use crate::query::{Query, QueryKind};

/// Functional units the host dedicates to serving (one cluster of 32,
/// matching the per-cluster shape of the paper's conventional machine);
/// per-op time prices amortise one latency over these slots.
pub const HOST_UNITS: u64 = 32;

/// Builds the host price table for serve traffic from the paper's
/// Table-1 CMOS constants: `GateDynamic` carries the functional-unit
/// switching (byte comparator for lookups/compares, CLA adder for
/// adds), `CacheAccess` the expected (hit-ratio-weighted) operand fetch
/// through the shared DNA cache. Adds price no cache cell — see the
/// module docs for the register-resident assumption.
pub fn host_unit_costs() -> UnitCosts {
    let machine = ConventionalMachine::dna_paper();
    let slots = HOST_UNITS as f64;
    let comparator_energy = machine.unit.dynamic_energy(&machine.tech);
    let comparator_time = machine.unit.latency(&machine.tech) * (1.0 / slots);
    let adder = ClaAdder::unit();
    let access_energy = machine.cache.expected_access_energy();
    let access_time = machine.cache.expected_access_time(&machine.tech) * (1.0 / slots);
    let mut prices = UnitCosts::new();
    for phase in [Phase::Index, Phase::Map] {
        prices.set(
            Component::GateDynamic,
            phase,
            comparator_energy,
            comparator_time,
        );
        prices.set(Component::CacheAccess, phase, access_energy, access_time);
    }
    prices.set(
        Component::GateDynamic,
        Phase::Add,
        adder.dynamic_energy(&machine.tech),
        adder.latency(&machine.tech) * (1.0 / slots),
    );
    prices
}

/// What the host produced for its share of one serve batch.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HostBatchOutcome {
    /// Queries the host served.
    pub queries: u64,
    /// Primitive operations (comparator/ALU invocations) performed.
    pub operations: u64,
    /// Order-insensitive checksum over the results — the same
    /// `checksum_term` fold the fabric computes, so host- and
    /// CIM-routed shares of a stream sum to the same reference total.
    pub checksum: u64,
    /// Exact op counts, charged through [`Query::charge_host`].
    pub counts: CountLedger,
}

/// Serves queries on the conventional machine with plain host
/// arithmetic.
///
/// The host *is* the ground-truth semantics the fabric is verified
/// against ([`Query::expected_value`]), so executing here means
/// evaluating that definition directly; costs are charged through the
/// single [`Query::charge_host`] definition, keeping host accounting
/// conserved by construction exactly like the fabric's.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct HostQueryExecutor;

impl HostQueryExecutor {
    /// Machine label used in reports and dispatch traces.
    pub const MACHINE: &'static str = "host";

    /// Executes a batch of host-routed queries.
    pub fn execute(self, batch: &[Query]) -> HostBatchOutcome {
        let mut counts = CountLedger::new();
        let mut checksum = 0u64;
        let mut operations = 0u64;
        for query in batch {
            let value = query.expected_value();
            checksum = checksum.wrapping_add(query.checksum_term(value));
            operations += query.kind.operations();
            query.charge_host(&mut counts);
        }
        HostBatchOutcome {
            queries: batch.len() as u64,
            operations,
            checksum,
            counts,
        }
    }

    /// Modelled service time of a host batch, in picoseconds: the
    /// slowest per-query latency present — a compare pays its unit
    /// compute plus one expected cache access, an add only its ALU
    /// latency — mirroring the fabric's batch-content service rule (a
    /// pure function of the batch, never of the partition). Zero for an
    /// empty batch.
    pub fn service_ps(self, batch: &[Query]) -> u64 {
        let machine = ConventionalMachine::dna_paper();
        let ps = |t: cim_units::Time| (t.get() * 1e12).round() as u64;
        let compare_ps = ps(machine.unit.latency(&machine.tech))
            + ps(machine.cache.expected_access_time(&machine.tech));
        let add_ps = ps(ClaAdder::unit().latency(&machine.tech));
        batch
            .iter()
            .map(|query| match query.kind {
                QueryKind::Lookup | QueryKind::Compare => compare_ps,
                QueryKind::Add => add_ps,
            })
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::TrafficSpec;
    use cim_units::Energy;

    #[test]
    fn host_prices_encode_the_cost_asymmetry() {
        let prices = host_unit_costs();
        // Compares pay the cache: one expected access ≈ 505 pJ dwarfs
        // the comparator's ~142 aJ switch.
        let access = prices.unit_energy(Component::CacheAccess, Phase::Map);
        assert!((access.as_pico_joules() - 505.0).abs() < 1.0, "{access}");
        // Adds are register-resident: gate switching only, no cache cell.
        assert_eq!(
            prices.unit_energy(Component::CacheAccess, Phase::Add),
            Energy::ZERO
        );
        let alu = prices.unit_energy(Component::GateDynamic, Phase::Add);
        assert!((alu.as_atto_joules() - 509.6).abs() < 1.0, "{alu}");
    }

    #[test]
    fn host_execution_checksums_match_the_reference() {
        // Host-served traffic reproduces the stream's ground-truth
        // checksum: the host is the reference semantics.
        let spec = TrafficSpec::sustained(400, 77);
        let outcome = HostQueryExecutor.execute(&spec.generate());
        assert_eq!(outcome.queries, 400);
        assert_eq!(outcome.checksum, spec.reference_checksum());
        assert_eq!(outcome.operations, spec.operations());
        assert!(!outcome.counts.is_empty());
    }

    #[test]
    fn host_service_follows_batch_content() {
        let queries = TrafficSpec::sustained(40, 3).generate();
        let adds: Vec<Query> = queries
            .iter()
            .copied()
            .filter(|q| q.kind == QueryKind::Add)
            .collect();
        let host = HostQueryExecutor;
        // An all-adds batch is register-resident and fast (252 ps);
        // any compare drags in the ~84 ns expected cache access.
        assert_eq!(host.service_ps(&adds), 252);
        assert!(host.service_ps(&queries) > 10_000);
        assert_eq!(host.service_ps(&[]), 0);
    }
}
