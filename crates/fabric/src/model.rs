//! Pricing: one [`UnitCosts`] table per [`TileGrid`].
//!
//! The fabric accounts in exact op counts (`cim_units::CountLedger`);
//! this module fixes what one count of each cell *costs*. Prices are
//! pure functions of the grid — Table-1 primitive costs, the
//! interconnect's hop terms, the controller's per-step energy — and are
//! dyadically quantized by `UnitCosts::set`, which is what makes
//! per-tile ledgers sum bit-for-bit to the fabric ledger.
//!
//! Time prices are **throughput-amortized makespan shares**: a tile
//! executes `parallel_ops_per_tile` primitives concurrently, so one
//! primitive's share of the makespan is `latency / slots`; likewise the
//! H-tree's `modeled_tiles` links carry words concurrently, so one
//! hop's share is `hop_latency / modeled_tiles`. Summed over all counts
//! these shares reconstruct the modelled makespan of a saturated fabric.

use cim_arch::{CimOp, TileGrid};
use cim_units::{Component, Phase, UnitCosts};

use crate::query::ADD_BITS;

/// Builds the grid's price table.
pub fn unit_costs(grid: &TileGrid) -> UnitCosts {
    let mut prices = UnitCosts::new();
    let comparator = CimOp::Comparator.cost(&grid.tech);
    let adder = CimOp::TcAdder { bits: ADD_BITS }.cost(&grid.tech);
    let comparator_slots = (grid.tile_devices / comparator.devices as u64).max(1);
    let adder_slots = (grid.tile_devices / adder.devices as u64).max(1);
    let hop_share = grid.interconnect.hop_latency / grid.modeled_tiles.max(1) as f64;
    for phase in Phase::ALL {
        prices.set(
            comparator.component,
            phase,
            comparator.energy,
            comparator.latency / comparator_slots as f64,
        );
        prices.set(
            adder.component,
            phase,
            adder.energy,
            adder.latency / adder_slots as f64,
        );
        prices.set(
            Component::Controller,
            phase,
            grid.controller.step_energy(),
            cim_units::Time::ZERO,
        );
        prices.set(
            Component::Interconnect,
            phase,
            grid.interconnect.hop_energy,
            hop_share,
        );
    }
    prices
}

#[cfg(test)]
mod tests {
    use super::*;
    use cim_units::{dyadic, Energy};

    #[test]
    fn prices_are_grid_pure_and_tile_count_invariant() {
        // Same technology, different executed grids: identical prices —
        // the executed tile count is a host concern, not a cost term.
        let a = unit_costs(&TileGrid::paper_dna(1, 1));
        let b = unit_costs(&TileGrid::paper_dna(2, 2));
        assert_eq!(a, b);
    }

    #[test]
    fn prices_carry_the_table1_constants() {
        let prices = unit_costs(&TileGrid::paper_dna(2, 2));
        // 45 fJ comparator, 256 fJ adder, 50 fJ hop — dyadically rounded.
        assert_eq!(
            prices.unit_energy(Component::ImplyStep, Phase::Map),
            Energy::new(dyadic(45e-15))
        );
        assert_eq!(
            prices.unit_energy(Component::CrossbarWrite, Phase::Add),
            Energy::new(dyadic(256e-15))
        );
        assert_eq!(
            prices.unit_energy(Component::Interconnect, Phase::Index),
            Energy::new(dyadic(50e-15))
        );
        // The 2000-gate sequencer prices a broadcast step.
        assert!(prices.unit_energy(Component::Controller, Phase::Map).get() > 0.0);
        // Amortized compute time: 3.2 ns over 2^20/13 slots.
        let share = prices.unit_time(Component::ImplyStep, Phase::Map).get();
        let expect = 3.2e-9 / ((1u64 << 20) / 13) as f64;
        assert!((share / expect - 1.0).abs() < 1e-6, "share {share}");
    }
}
