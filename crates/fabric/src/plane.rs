//! The electrical plane: per-tile sentinel arrays solved as a batch.
//!
//! The fabric's ledgers price tile work from Table-1 constants, but the
//! constants only hold while every tile's crossbar still *reads* — the
//! sneak-path margin of Section IV.B is a per-array electrical fact, not
//! a bookkeeping one. [`ElectricalPlane`] keeps one sentinel array per
//! executed tile (1S1R junction, worst-case all-LRS background, the
//! selected cell at the electrically farthest corner) and re-validates
//! all of them with **batch-of-solves** concurrency: each tile's nodal
//! analysis is an independent solve, so [`ElectricalPlane::sense_all`]
//! dispatches one solve per pool worker via [`cim_crossbar::solve_batch`]
//! — the parallelism axis that matches the hardware — instead of
//! serializing the fabric on a single electrical backend.
//!
//! Determinism: tile sentinels are pure functions of the tile index, and
//! the batch driver returns results in tile order, so the margins are
//! bit-identical at every thread count.

use cim_arch::TileGrid;
use cim_crossbar::{solve_batch, BiasScheme, Crossbar, SelectorCell};
use cim_device::DeviceParams;
use cim_units::Current;
use serde::{Deserialize, Serialize};

/// One tile's electrical health check.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TileMargin {
    /// Executed tile index (row-major over the grid).
    pub tile: u64,
    /// Sense current with the sentinel cell storing 1.
    pub i_one: Current,
    /// Sense current with the sentinel cell storing 0 (sneak-inflated).
    pub i_zero: Current,
    /// Normalised read margin `(i_one − i_zero) / i_one`.
    pub margin: f64,
}

/// Read-margin floor below which a tile is considered unreadable
/// (DESIGN.md §3: practical sense amplifiers need roughly 10%).
pub const MARGIN_FLOOR: f64 = 0.1;

/// One sentinel crossbar per executed tile, batch-validated.
#[derive(Debug)]
pub struct ElectricalPlane {
    arrays: Vec<Crossbar<SelectorCell>>,
    side: usize,
}

impl ElectricalPlane {
    /// Builds the plane for `grid`: one `side × side` 1S1R sentinel per
    /// executed tile, all-LRS worst-case background, with each tile's
    /// sentinel row salted by the tile index so the solved bias points
    /// differ per tile (distinct work, as on real hardware).
    ///
    /// # Panics
    ///
    /// Panics if `side < 2` (no meaningful sneak-path geometry).
    pub fn paper(grid: &TileGrid, side: usize) -> Self {
        assert!(side >= 2, "sentinel arrays need at least a 2x2 geometry");
        let params = DeviceParams::table1_cim();
        let arrays = (0..grid.tiles())
            .map(|tile| {
                let mut array = Crossbar::homogeneous(side, side, || {
                    SelectorCell::new(params.clone(), 10.0, params.v_set * 0.5)
                });
                array.fill(|_, _| true);
                let (row, col) = Self::sentinel_cell(tile, side);
                array.program(row, col, true);
                array
            })
            .collect();
        Self { arrays, side }
    }

    /// The tile's sentinel coordinate: the far column of a tile-salted
    /// row, so every tile solves a distinct (but deterministic) access.
    fn sentinel_cell(tile: u64, side: usize) -> (usize, usize) {
        ((tile as usize) % side, side - 1)
    }

    /// Number of tile sentinels (one per executed tile).
    pub fn tiles(&self) -> usize {
        self.arrays.len()
    }

    /// Sentinel array side length.
    pub fn side(&self) -> usize {
        self.side
    }

    /// Re-reads every tile's sentinel twice (stored 1, then 0, then
    /// restores the 1) and reports the margins in tile order,
    /// dispatching the independent solves over `threads` pool workers
    /// (`0` = all cores). Bit-identical at every thread count.
    pub fn sense_all(&mut self, threads: usize) -> Vec<TileMargin> {
        let side = self.side;
        solve_batch(threads, &mut self.arrays, move |tile, array| {
            let (row, col) = Self::sentinel_cell(tile as u64, side);
            array.program(row, col, true);
            let one = array.read(row, col, BiasScheme::HalfV);
            array.program(row, col, false);
            let zero = array.read(row, col, BiasScheme::HalfV);
            array.program(row, col, true);
            let i_one = one.sense_current.get().abs();
            let i_zero = zero.sense_current.get().abs();
            TileMargin {
                tile: tile as u64,
                i_one: Current::new(i_one),
                i_zero: Current::new(i_zero),
                margin: (i_one - i_zero) / i_one.max(1e-30),
            }
        })
    }

    /// Batch-validates the whole plane: `Ok` with the margins when every
    /// tile clears [`MARGIN_FLOOR`], otherwise `Err` naming the worst
    /// offender.
    pub fn validate(&mut self, threads: usize) -> Result<Vec<TileMargin>, String> {
        let margins = self.sense_all(threads);
        match margins
            .iter()
            .filter(|m| m.margin < MARGIN_FLOOR)
            .min_by(|a, b| a.margin.total_cmp(&b.margin))
        {
            Some(worst) => Err(format!(
                "tile {} read margin {:.3} below the {MARGIN_FLOOR} floor",
                worst.tile, worst.margin
            )),
            None => Ok(margins),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn margins_are_bit_identical_at_every_thread_count() {
        let grid = TileGrid::paper_dna(2, 3);
        let reference = ElectricalPlane::paper(&grid, 8).sense_all(1);
        for threads in [2usize, 4, 0] {
            let margins = ElectricalPlane::paper(&grid, 8).sense_all(threads);
            assert_eq!(margins.len(), reference.len());
            for (got, want) in margins.iter().zip(&reference) {
                assert_eq!(got.tile, want.tile);
                assert_eq!(
                    got.i_one.get().to_bits(),
                    want.i_one.get().to_bits(),
                    "tile {} i_one diverged at {threads} threads",
                    got.tile
                );
                assert_eq!(got.i_zero.get().to_bits(), want.i_zero.get().to_bits());
                assert_eq!(got.margin.to_bits(), want.margin.to_bits());
            }
        }
    }

    #[test]
    fn the_paper_plane_validates_clean() {
        let grid = TileGrid::paper_dna(2, 2);
        let mut plane = ElectricalPlane::paper(&grid, 8);
        let margins = plane.validate(0).expect("1S1R sentinels stay readable");
        assert_eq!(margins.len(), 4);
        assert!(margins.iter().all(|m| m.margin >= MARGIN_FLOOR));
    }

    #[test]
    fn repeated_sensing_is_stable() {
        // The sense cycle restores the sentinel bit, so the plane can be
        // re-validated forever without drifting. Successive cycles
        // warm-start the iterative solver from different states, so the
        // margins agree to the solver tolerance, not bit-for-bit.
        let grid = TileGrid::paper_dna(1, 2);
        let mut plane = ElectricalPlane::paper(&grid, 8);
        let first = plane.sense_all(2);
        let second = plane.sense_all(2);
        for (a, b) in first.iter().zip(&second) {
            assert!(
                (a.margin - b.margin).abs() < 1e-6,
                "tile {} margin drifted: {} vs {}",
                a.tile,
                a.margin,
                b.margin
            );
        }
    }
}
