//! Query traffic: small DNA-lookup / compare / add requests.
//!
//! A [`Query`] is the serving layer's unit of work: a tenant-tagged,
//! seeded request whose operands, expected result, and cost counts are
//! all pure functions of the query itself. That purity is what makes
//! fabric results independent of *where* a query executes — shard the
//! batch over 1 or 4 tiles, the per-query evidence is identical, and the
//! order-insensitive checksum folds it identically.

use cim_units::{Component, CountLedger, Phase};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use cim_arch::TileGrid;

/// Symbols compared by one lookup/compare query (≤ 64 so one bit-sliced
/// comparator invocation covers the whole window).
pub const WINDOW: usize = 32;

/// Word width of one add query.
pub const ADD_BITS: u32 = 32;

/// One serving tenant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct TenantId(pub u32);

impl std::fmt::Display for TenantId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "tenant-{}", self.0)
    }
}

/// What a query asks the fabric to compute.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum QueryKind {
    /// Probe a resident reference window with a near-identical pattern
    /// (the DNA index probe); charged to [`Phase::Index`].
    Lookup,
    /// Compare two independent symbol windows (the DNA mapping inner
    /// loop); charged to [`Phase::Map`].
    Compare,
    /// One `ADD_BITS`-wide addition; charged to [`Phase::Add`].
    Add,
}

impl QueryKind {
    /// The phase this kind's cost lands in.
    pub fn phase(self) -> Phase {
        match self {
            QueryKind::Lookup => Phase::Index,
            QueryKind::Compare => Phase::Map,
            QueryKind::Add => Phase::Add,
        }
    }

    /// In-array primitive invocations one query of this kind performs
    /// (comparator calls, adder calls).
    pub fn operations(self) -> u64 {
        match self {
            QueryKind::Lookup | QueryKind::Compare => WINDOW as u64,
            QueryKind::Add => 1,
        }
    }
}

impl std::fmt::Display for QueryKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            QueryKind::Lookup => "lookup",
            QueryKind::Compare => "compare",
            QueryKind::Add => "add",
        })
    }
}

/// One request: everything about it (operands, expected result, cost
/// counts, locality draw) derives from `(id, seed)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Query {
    /// Dense per-traffic id; also the sharding key.
    pub id: u64,
    /// The submitting tenant.
    pub tenant: TenantId,
    /// What to compute.
    pub kind: QueryKind,
    /// Operand seed.
    pub seed: u64,
}

/// Operands of one query, synthesized from its seed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryOperands {
    /// Symbol windows for lookup/compare: `(query, reference)` pairs of
    /// 2-bit symbols.
    Windows {
        /// The probe symbols.
        query: [u8; WINDOW],
        /// The resident reference symbols.
        reference: [u8; WINDOW],
    },
    /// The two `ADD_BITS`-wide words of an add query.
    Words {
        /// First addend.
        a: u64,
        /// Second addend.
        b: u64,
    },
}

impl Query {
    /// Synthesizes this query's operands (pure in `self`).
    ///
    /// Lookups probe with a near-identical pattern (each symbol mutated
    /// with probability 1/8) so match masks are dense; compares draw
    /// both windows independently.
    pub fn operands(&self) -> QueryOperands {
        let mut rng = StdRng::seed_from_u64(self.seed ^ self.id.rotate_left(32));
        match self.kind {
            QueryKind::Lookup | QueryKind::Compare => {
                let mut query = [0u8; WINDOW];
                let mut reference = [0u8; WINDOW];
                for i in 0..WINDOW {
                    reference[i] = (rng.gen::<u64>() & 3) as u8;
                    query[i] = if self.kind == QueryKind::Lookup {
                        if rng.gen::<u64>() % 8 == 0 {
                            (reference[i] + 1 + (rng.gen::<u64>() % 3) as u8) & 3
                        } else {
                            reference[i]
                        }
                    } else {
                        (rng.gen::<u64>() & 3) as u8
                    };
                }
                QueryOperands::Windows { query, reference }
            }
            QueryKind::Add => {
                let mask = (1u64 << ADD_BITS) - 1;
                QueryOperands::Words {
                    a: rng.gen::<u64>() & mask,
                    b: rng.gen::<u64>() & mask,
                }
            }
        }
    }

    /// The ground-truth result value, computed with plain host
    /// arithmetic — the independent reference the in-array execution is
    /// verified against. Lookup/compare: the 32-bit equality mask.
    /// Add: the `ADD_BITS + 1`-bit sum.
    pub fn expected_value(&self) -> u64 {
        match self.operands() {
            QueryOperands::Windows { query, reference } => {
                let mut mask = 0u64;
                for (lane, (q, r)) in query.iter().zip(&reference).enumerate() {
                    mask |= u64::from(q == r) << lane;
                }
                mask
            }
            QueryOperands::Words { a, b } => (a + b) & ((1u64 << (ADD_BITS + 1)) - 1),
        }
    }

    /// True when this query's operands are already resident on its home
    /// tile — a deterministic per-query draw at the interconnect's
    /// locality rate, so movement counts never depend on the executed
    /// tile partition.
    pub fn is_local(&self, grid: &TileGrid) -> bool {
        // Quantize locality to per-mille so the draw is integral.
        let per_mille = (grid.interconnect.locality * 1000.0).round() as u64;
        self.seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .rotate_left(17)
            % 1000
            < per_mille
    }

    /// Dispatch key for modular tile sharding: a bit-mixed function of
    /// the id. Raw ids would alias the generator's 4-cycle kind rotation
    /// on small grids, locking each tile to one query kind.
    pub fn home_key(&self) -> u64 {
        self.id.wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(29)
    }

    /// This query's contribution to the checksum: its expected value
    /// keyed by id so transpositions cannot cancel. Wrapping addition of
    /// these contributions is commutative and associative — the fold is
    /// identical under any sharding.
    pub fn checksum_term(&self, value: u64) -> u64 {
        value.wrapping_mul(self.id.wrapping_mul(2).wrapping_add(1))
    }

    /// Counts this query's cost into `counts` — the *only* place query
    /// costs are defined, shared by the per-tile executors and the
    /// per-tenant accounting so the two views conserve by construction:
    ///
    /// * the primitive invocations, on the op's own component;
    /// * one controller broadcast step per microprogram step;
    /// * for a non-resident query ([`is_local`](Self::is_local)),
    ///   `route_hops` interconnect hops per operand word (two words).
    pub fn charge(&self, counts: &mut CountLedger, grid: &TileGrid) {
        Self::charge_kind(counts, grid, self.kind, self.is_local(grid));
    }

    /// The kind-level body of [`charge`](Self::charge): per-query counts
    /// are a pure function of `(kind, locality)`, which is what lets the
    /// serving dispatcher precompute its routing table once per batch
    /// instead of re-pricing every query.
    pub fn charge_kind(counts: &mut CountLedger, grid: &TileGrid, kind: QueryKind, local: bool) {
        let phase = kind.phase();
        let ops = kind.operations();
        let (component, steps) = match kind {
            QueryKind::Lookup | QueryKind::Compare => {
                let cost = cim_arch::CimOp::Comparator.cost(&grid.tech);
                (cost.component, cost.steps)
            }
            QueryKind::Add => {
                let cost = cim_arch::CimOp::TcAdder { bits: ADD_BITS }.cost(&grid.tech);
                (cost.component, cost.steps)
            }
        };
        counts.charge(component, phase, ops);
        counts.charge(Component::Controller, phase, ops * steps);
        if !local {
            counts.charge(Component::Interconnect, phase, 2 * grid.route_hops());
        }
    }

    /// Counts this query's cost when the *host* machine serves it — the
    /// conventional-side twin of [`charge`](Self::charge), and likewise
    /// the only place host query costs are defined (shared by the host
    /// executor and the per-tenant accounting):
    ///
    /// * lookups/compares: one comparator gate op per symbol
    ///   ([`Component::GateDynamic`]) plus **two** operand symbol fetches
    ///   per comparison through the shared cache
    ///   ([`Component::CacheAccess`]) — the reference window is memory
    ///   resident on the host, so it pays the paper's locality-hostile
    ///   access pattern;
    /// * adds: a single register-resident ALU op (gate switching only —
    ///   both addends arrive in the request payload, so no memory
    ///   traffic is charged).
    pub fn charge_host(&self, counts: &mut CountLedger) {
        Self::charge_host_kind(counts, self.kind);
    }

    /// The kind-level body of [`charge_host`](Self::charge_host); host
    /// counts depend on nothing but the kind.
    pub fn charge_host_kind(counts: &mut CountLedger, kind: QueryKind) {
        let phase = kind.phase();
        let ops = kind.operations();
        counts.charge(Component::GateDynamic, phase, ops);
        if kind != QueryKind::Add {
            counts.charge(Component::CacheAccess, phase, 2 * ops);
        }
    }
}

/// A deterministic traffic pattern: `queries` requests from `tenants`
/// tenants, kinds mixed 2:1:1 (lookup-heavy, as DNA serving is).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TrafficSpec {
    /// Total queries.
    pub queries: u64,
    /// Distinct tenants, round-robin over arrivals.
    pub tenants: u32,
    /// Seed for operands and arrival jitter.
    pub seed: u64,
}

impl TrafficSpec {
    /// A small sustained-traffic default: 4 tenants.
    pub fn sustained(queries: u64, seed: u64) -> Self {
        Self {
            queries,
            tenants: 4,
            seed,
        }
    }

    /// Generates the query stream in arrival order.
    pub fn generate(&self) -> Vec<Query> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        (0..self.queries)
            .map(|id| {
                let kind = match id % 4 {
                    0 | 1 => QueryKind::Lookup,
                    2 => QueryKind::Compare,
                    _ => QueryKind::Add,
                };
                // The tenant comes from the stream RNG, not from `id` —
                // an id-derived rotation would alias the kind cycle and
                // the modular tile sharding, locking each tenant to one
                // query kind and one home tile.
                Query {
                    id,
                    tenant: TenantId((rng.gen::<u64>() % u64::from(self.tenants.max(1))) as u32),
                    kind,
                    seed: rng.gen::<u64>(),
                }
            })
            .collect()
    }

    /// The ground-truth checksum over the whole stream, recomputed with
    /// plain host arithmetic.
    pub fn reference_checksum(&self) -> u64 {
        self.generate().iter().fold(0u64, |acc, q| {
            acc.wrapping_add(q.checksum_term(q.expected_value()))
        })
    }

    /// Total in-array primitive invocations of the stream.
    pub fn operations(&self) -> u64 {
        self.generate().iter().map(|q| q.kind.operations()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traffic_is_deterministic_and_mixed() {
        let spec = TrafficSpec::sustained(100, 7);
        let a = spec.generate();
        let b = spec.generate();
        assert_eq!(a, b);
        assert_eq!(a.len(), 100);
        assert_eq!(a.iter().filter(|q| q.kind == QueryKind::Lookup).count(), 50);
        assert_eq!(a.iter().filter(|q| q.kind == QueryKind::Add).count(), 25);
        // Tenants are drawn per query and decorrelated from the kind
        // cycle: every tenant submits every kind.
        for tenant in 0..4u32 {
            for kind in [QueryKind::Lookup, QueryKind::Compare, QueryKind::Add] {
                assert!(
                    a.iter()
                        .any(|q| q.tenant == TenantId(tenant) && q.kind == kind),
                    "tenant-{tenant} never submits {kind}"
                );
            }
        }
    }

    #[test]
    fn expected_values_are_pure_and_plausible() {
        let spec = TrafficSpec::sustained(200, 3);
        for q in spec.generate() {
            assert_eq!(q.expected_value(), q.expected_value());
            match q.kind {
                QueryKind::Lookup => {
                    // Near-identical probe: most lanes match.
                    assert!(q.expected_value().count_ones() >= 16, "sparse lookup mask");
                }
                QueryKind::Compare | QueryKind::Add => {}
            }
        }
    }

    #[test]
    fn locality_draw_matches_the_interconnect_rate() {
        let grid = cim_arch::TileGrid::paper_dna(2, 2);
        let spec = TrafficSpec::sustained(4000, 11);
        let local = spec.generate().iter().filter(|q| q.is_local(&grid)).count();
        // 90% nominal on 4000 draws: allow generous slack.
        assert!((3400..=3800).contains(&local), "local draws {local}");
    }

    #[test]
    fn charges_decompose_by_kind() {
        let grid = cim_arch::TileGrid::paper_dna(1, 1);
        let lookup = Query {
            id: 0,
            tenant: TenantId(0),
            kind: QueryKind::Lookup,
            seed: 1,
        };
        let mut counts = CountLedger::new();
        lookup.charge(&mut counts, &grid);
        assert_eq!(counts.count(Component::ImplyStep, Phase::Index), 32);
        // 16 steps per comparator invocation.
        assert_eq!(counts.count(Component::Controller, Phase::Index), 32 * 16);

        let add = Query {
            kind: QueryKind::Add,
            ..lookup
        };
        let mut counts = CountLedger::new();
        add.charge(&mut counts, &grid);
        assert_eq!(counts.count(Component::CrossbarWrite, Phase::Add), 1);
        // 4N+5 = 133 steps for the 32-bit CRS adder.
        assert_eq!(counts.count(Component::Controller, Phase::Add), 133);
    }

    #[test]
    fn host_charges_decompose_by_kind() {
        let lookup = Query {
            id: 0,
            tenant: TenantId(0),
            kind: QueryKind::Lookup,
            seed: 1,
        };
        let mut counts = CountLedger::new();
        lookup.charge_host(&mut counts);
        // One gate op per symbol, two operand fetches per comparison.
        assert_eq!(counts.count(Component::GateDynamic, Phase::Index), 32);
        assert_eq!(counts.count(Component::CacheAccess, Phase::Index), 64);

        let add = Query {
            kind: QueryKind::Add,
            ..lookup
        };
        let mut counts = CountLedger::new();
        add.charge_host(&mut counts);
        // Register-resident add: gate switching only, no memory traffic.
        assert_eq!(counts.count(Component::GateDynamic, Phase::Add), 1);
        assert_eq!(counts.count(Component::CacheAccess, Phase::Add), 0);
        assert_eq!(counts.total(), 1);
    }

    #[test]
    fn remote_queries_charge_modelled_hop_counts() {
        let grid = cim_arch::TileGrid::paper_dna(2, 2);
        let spec = TrafficSpec::sustained(500, 5);
        let mut remote_seen = false;
        for q in spec.generate() {
            let mut counts = CountLedger::new();
            q.charge(&mut counts, &grid);
            let hops = counts.count(Component::Interconnect, q.kind.phase());
            if q.is_local(&grid) {
                assert_eq!(hops, 0);
            } else {
                remote_seen = true;
                // Two operand words × 15 modelled hops.
                assert_eq!(hops, 30);
            }
        }
        assert!(remote_seen, "no remote query in 500 draws");
    }
}
