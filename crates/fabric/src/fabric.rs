//! The fabric executor: query batches sharded across a tile grid.
//!
//! [`FabricExecutor`] owns a [`TileGrid`] plus a legal [`Placement`] and
//! executes query batches by sharding them over the executed tiles
//! (deterministic modular sharding on the query id) through the
//! persistent deterministic driver (`cim_sim::par_units` — tiles are the
//! parallelism grain, one worker per claimed tile). Every query runs its
//! real in-array semantics — IMPLY comparator microprograms for
//! lookups/compares, the ripple adder for adds — and is checked against
//! plain host arithmetic; a disagreement is a loud
//! [`SimError::Diverged`].
//!
//! **Determinism and conservation.** Per-tile outcomes are pure
//! functions of the tile's query slice; the fabric merges them in tile
//! order. Counts merge exactly (integer), checksums fold commutatively,
//! and ledgers are dyadic evaluations of counts — so the fabric outcome
//! is bit-identical for any executed tile count and any thread count,
//! and the fabric ledger equals the tile-order sum of per-tile ledgers
//! bit-for-bit (`cim_units::counts` has the proof obligations).

use cim_arch::{Placement, RunReport, TileCoord, TileGrid};
use cim_logic::{BitSliceEngine, Comparator, ImplyAdder, LaneBlock, Lanes4, Lanes8, TcAdderModel};
use cim_sim::{
    par_units, BatchPolicy, CostEstimate, ExecutionBackend, KernelPolicy, RunOutcome, SimError,
};
use cim_units::{Area, CostLedger, CountLedger, UnitCosts, MAX_EXACT_COUNT};
use cim_workloads::{ExecutionDigest, ProjectionKind, Workload, WorkloadError};
use serde::{Deserialize, Serialize};

use crate::model::unit_costs;
use crate::query::{Query, QueryOperands, TrafficSpec, ADD_BITS, WINDOW};

/// What one tile produced for its shard of a batch.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TileOutcome {
    /// The tile.
    pub tile: TileCoord,
    /// Queries this tile executed.
    pub queries: u64,
    /// Primitive invocations this tile executed.
    pub operations: u64,
    /// Order-insensitive checksum over this tile's results.
    pub checksum: u64,
    /// Exact op counts (merge to the fabric counts).
    pub counts: CountLedger,
    /// Priced ledger (`evaluate(counts)`; sums bit-for-bit to the
    /// fabric ledger).
    pub ledger: CostLedger,
}

/// The merged result of one batch across the fabric.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FabricOutcome {
    /// Per-tile outcomes, in tile order.
    pub tiles: Vec<TileOutcome>,
    /// Functional summary of the batch.
    pub digest: ExecutionDigest,
    /// Exact fabric-wide op counts.
    pub counts: CountLedger,
    /// The fabric ledger: `evaluate(counts)` — bit-equal to the
    /// tile-order merge of the per-tile ledgers.
    pub ledger: CostLedger,
}

impl FabricOutcome {
    /// Modelled makespan of the batch (sum of ledger time shares).
    pub fn makespan(&self) -> cim_units::Time {
        self.ledger.total_time()
    }
}

/// Executes query batches across a [`TileGrid`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FabricExecutor {
    /// The physical grid.
    pub grid: TileGrid,
    /// Which working set lives where (checked legal at construction).
    pub placement: Placement,
    /// Host threading for the tile dispatch. Results are identical at
    /// every thread count; only wall-clock changes.
    pub batch: BatchPolicy,
    /// Functional kernel for the hot loops; both kernels produce
    /// bit-identical outcomes.
    pub kernel: KernelPolicy,
    prices: UnitCosts,
}

impl FabricExecutor {
    /// Machine label used in errors and reports.
    pub const MACHINE: &'static str = "cim-fabric";

    /// Builds an executor over a grid, rejecting illegal placements
    /// (the static half of the contract `cim-verify` re-checks).
    pub fn new(
        grid: TileGrid,
        placement: Placement,
        batch: BatchPolicy,
        kernel: KernelPolicy,
    ) -> Result<Self, cim_arch::PlaceError> {
        placement.check(&grid)?;
        let prices = unit_costs(&grid);
        Ok(Self {
            grid,
            placement,
            batch,
            kernel,
            prices,
        })
    }

    /// The paper DNA fabric on a `rows × cols` executed grid with the
    /// uniform placement (reference window + query buffer per tile).
    pub fn paper(rows: u32, cols: u32, batch: BatchPolicy) -> Self {
        let grid = TileGrid::paper_dna(rows, cols);
        let placement = Placement::uniform(&grid, grid.tile_devices / 2, WINDOW as u32);
        Self::new(grid, placement, batch, KernelPolicy::default())
            .expect("uniform placement is legal by construction")
    }

    /// The grid's price table (dyadic; see `cim_units::counts`).
    pub fn prices(&self) -> &UnitCosts {
        &self.prices
    }

    /// Builds the per-tile electrical plane for this executor's grid:
    /// one `side × side` sneak-path sentinel per executed tile (see
    /// [`crate::plane::ElectricalPlane`]).
    pub fn electrical_plane(&self, side: usize) -> crate::plane::ElectricalPlane {
        crate::plane::ElectricalPlane::paper(&self.grid, side)
    }

    /// Batch-validates every tile's read margin over the executor's own
    /// thread knob ([`FabricExecutor::batch`]): the independent per-tile
    /// solves dispatch one-per-worker (batch-of-solves) instead of
    /// serializing on a single electrical backend.
    pub fn validate_electrically(
        &self,
        side: usize,
    ) -> Result<Vec<crate::plane::TileMargin>, String> {
        self.electrical_plane(side).validate(self.batch.threads)
    }

    /// Total fabric area: crossbar cells plus per-tile sequencers.
    pub fn area(&self) -> Area {
        self.grid.tech.cell_area * self.grid.devices() as f64
            + self.grid.controller.area() * self.grid.tiles() as f64
    }

    /// Executes one batch, sharding queries across the executed tiles.
    pub fn execute(&self, queries: &[Query]) -> Result<FabricOutcome, SimError> {
        let tiles = self.grid.tiles() as usize;
        // Shard in arrival order: per-tile slices preserve the batch's
        // relative order, so each tile's serial walk is a pure function
        // of the batch content — never of the partition.
        let mut shards: Vec<Vec<&Query>> = vec![Vec::new(); tiles];
        for query in queries {
            shards[self.grid.home_tile(query.home_key()) as usize].push(query);
        }

        let comparator = Comparator::new();
        let adder = ImplyAdder::new(ADD_BITS);
        let results = par_units(self.batch, tiles, |index| {
            self.run_tile(index, &shards[index], &comparator, &adder)
        });

        let mut tile_outcomes = Vec::with_capacity(tiles);
        let mut counts = CountLedger::new();
        let mut checksum = 0u64;
        let mut operations = 0u64;
        for result in results {
            let (outcome, diverged) = result;
            if let Some(detail) = diverged {
                return Err(SimError::Diverged {
                    machine: Self::MACHINE,
                    detail,
                });
            }
            counts.merge(&outcome.counts);
            checksum = checksum.wrapping_add(outcome.checksum);
            operations += outcome.operations;
            tile_outcomes.push(outcome);
        }
        let ledger = self.prices.evaluate(&counts);
        debug_assert!(
            cim_units::Component::ALL.iter().all(|&c| {
                cim_units::Phase::ALL
                    .iter()
                    .all(|&p| counts.count(c, p) <= MAX_EXACT_COUNT)
            }),
            "a count cell exceeded the exact-evaluation bound"
        );
        Ok(FabricOutcome {
            tiles: tile_outcomes,
            digest: ExecutionDigest {
                items_total: queries.len() as u64,
                items_verified: queries.len() as u64,
                operations,
                checksum: Some(checksum),
            },
            counts,
            ledger,
        })
    }

    /// Prices a batch without executing it: the closed-form projection
    /// (identical counts, no functional pass).
    pub fn project_batch(&self, queries: &[Query]) -> (CountLedger, CostLedger) {
        let mut counts = CountLedger::new();
        for query in queries {
            query.charge(&mut counts, &self.grid);
        }
        let ledger = self.prices.evaluate(&counts);
        (counts, ledger)
    }

    /// Runs one tile's shard serially: real in-array semantics per
    /// query, checked against host arithmetic, counts charged through
    /// the single shared `Query::charge` definition. Dispatches the
    /// kernel policy to a monomorphised block width once per tile, not
    /// per query.
    fn run_tile(
        &self,
        index: usize,
        shard: &[&Query],
        comparator: &Comparator,
        adder: &ImplyAdder,
    ) -> (TileOutcome, Option<String>) {
        match self.kernel {
            KernelPolicy::Scalar | KernelPolicy::BitSliced => {
                self.run_tile_kernel::<u64>(index, shard, comparator, adder)
            }
            KernelPolicy::BitSliced4 => {
                self.run_tile_kernel::<Lanes4>(index, shard, comparator, adder)
            }
            KernelPolicy::BitSliced8 => {
                self.run_tile_kernel::<Lanes8>(index, shard, comparator, adder)
            }
        }
    }

    /// The tile walk at block width `B` (scalar runs with `B = u64` but
    /// never touches the engine). Lane packing is in window order at
    /// every width, so values — and therefore checksums, divergence
    /// evidence, and ledgers — are bit-identical across kernels.
    fn run_tile_kernel<B: LaneBlock>(
        &self,
        index: usize,
        shard: &[&Query],
        comparator: &Comparator,
        adder: &ImplyAdder,
    ) -> (TileOutcome, Option<String>) {
        let scalar = self.kernel == KernelPolicy::Scalar;
        let mut engine = BitSliceEngine::<B>::wide();
        let mut scratch = Vec::new();
        let mut out = Vec::new();
        let scalar_adder = TcAdderModel::new(ADD_BITS);
        let mut counts = CountLedger::new();
        let mut checksum = 0u64;
        let mut operations = 0u64;
        let mut diverged: Option<String> = None;
        for query in shard {
            let value = match query.operands() {
                QueryOperands::Windows {
                    query: q,
                    reference,
                } => {
                    if scalar {
                        let program = comparator.eq_program();
                        let mut mask = 0u64;
                        let mut inputs = [false; 4];
                        for (lane, (&s, &r)) in q.iter().zip(&reference).enumerate() {
                            inputs[0] = s & 1 == 1;
                            inputs[1] = s & 2 == 2;
                            inputs[2] = r & 1 == 1;
                            inputs[3] = r & 2 == 2;
                            program.evaluate_into(&inputs, &mut scratch, &mut out);
                            mask |= u64::from(out[0]) << lane;
                        }
                        mask
                    } else {
                        let (mut s0, mut s1, mut r0, mut r1) = (B::ZERO, B::ZERO, B::ZERO, B::ZERO);
                        for (lane, (&s, &r)) in q.iter().zip(&reference).enumerate() {
                            s0.set_lane(lane, s & 1 == 1);
                            s1.set_lane(lane, s >> 1 & 1 == 1);
                            r0.set_lane(lane, r & 1 == 1);
                            r1.set_lane(lane, r >> 1 & 1 == 1);
                        }
                        let mask = (1u64 << WINDOW) - 1;
                        // WINDOW ≤ 64, so the match mask lives in word 0
                        // of the block at every width.
                        comparator
                            .matches_sliced_wide(&mut engine, s0, s1, r0, r1)
                            .word(0)
                            & mask
                    }
                }
                QueryOperands::Words { a, b } => {
                    if scalar {
                        scalar_adder.add(a, b)
                    } else {
                        let mut sums = [0u64];
                        adder.add_sliced_wide(&mut engine, &[(a, b)], &mut sums);
                        sums[0]
                    }
                }
            };
            let expect = query.expected_value();
            if value != expect && diverged.is_none() {
                diverged = Some(format!(
                    "tile {} query {} ({}): in-array result {value:#x} \
                     disagrees with host arithmetic {expect:#x}",
                    self.grid.coord_of(index as u64),
                    query.id,
                    query.kind,
                ));
            }
            checksum = checksum.wrapping_add(query.checksum_term(value));
            operations += query.kind.operations();
            query.charge(&mut counts, &self.grid);
        }
        let ledger = self.prices.evaluate(&counts);
        (
            TileOutcome {
                tile: self.grid.coord_of(index as u64),
                queries: shard.len() as u64,
                operations,
                checksum,
                counts,
                ledger,
            },
            diverged,
        )
    }
}

/// The serving workload: a deterministic query stream, verified against
/// host arithmetic recomputed independently of the fabric.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ServeWorkload {
    /// The traffic pattern.
    pub traffic: TrafficSpec,
}

impl Workload for ServeWorkload {
    fn name(&self) -> String {
        format!(
            "{} serving queries over {} tenants",
            self.traffic.queries, self.traffic.tenants
        )
    }

    fn seed(&self) -> u64 {
        self.traffic.seed
    }

    fn paper_ops(&self) -> u64 {
        self.traffic.operations()
    }

    fn scale_vs_paper(&self) -> f64 {
        1.0
    }

    fn projection(&self) -> ProjectionKind {
        ProjectionKind::ExecutedScale
    }

    fn verify(&self, digest: &ExecutionDigest) -> Result<(), WorkloadError> {
        if digest.items_total == 0 {
            return Err(WorkloadError::EmptyExecution);
        }
        if digest.items_total != self.traffic.queries {
            return Err(WorkloadError::ItemCountMismatch {
                expected: self.traffic.queries,
                got: digest.items_total,
            });
        }
        let expected = self.traffic.reference_checksum();
        if digest.checksum != Some(expected) {
            return Err(WorkloadError::ChecksumMismatch {
                expected,
                got: digest.checksum,
            });
        }
        Ok(())
    }
}

impl ExecutionBackend<ServeWorkload> for FabricExecutor {
    fn machine(&self) -> &'static str {
        Self::MACHINE
    }

    fn run(&self, workload: &ServeWorkload) -> Result<RunOutcome, SimError> {
        let queries = workload.traffic.generate();
        let outcome = self.execute(&queries)?;
        let report =
            RunReport::from_ledger(outcome.digest.operations, self.area(), &outcome.ledger);
        Ok(RunOutcome {
            machine: Self::MACHINE,
            report,
            ledger: outcome.ledger.clone(),
            digest: outcome.digest,
            measured_hit_ratio: None,
            index_hit_ratio: None,
            notes: vec![format!(
                "{} queries sharded over {} tiles, checksum verified against host arithmetic",
                queries.len(),
                self.grid.tiles()
            )],
        })
    }

    fn project_attributed(
        &self,
        workload: &ServeWorkload,
        _hit_ratio: f64,
    ) -> (RunReport, CostLedger) {
        let queries = workload.traffic.generate();
        let (_, ledger) = self.project_batch(&queries);
        let operations: u64 = queries.iter().map(|q| q.kind.operations()).sum();
        (
            RunReport::from_ledger(operations, self.area(), &ledger),
            ledger,
        )
    }

    /// The fabric's estimate is *exact*: the batch's counts are charged
    /// through the same single `Query::charge` definition execution
    /// uses, so the predicted ledger is bit-equal to the run's.
    fn estimate(&self, workload: &ServeWorkload) -> CostEstimate {
        let queries = workload.traffic.generate();
        let (counts, _) = self.project_batch(&queries);
        CostEstimate {
            machine: Self::MACHINE,
            counts,
            prices: self.prices.clone(),
            certified: true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn traffic(n: u64) -> Vec<Query> {
        TrafficSpec::sustained(n, 42).generate()
    }

    #[test]
    fn fabric_executes_and_verifies_a_batch() {
        let fabric = FabricExecutor::paper(2, 2, BatchPolicy::SERIAL);
        let queries = traffic(300);
        let outcome = fabric.execute(&queries).expect("no divergence");
        assert_eq!(outcome.digest.items_total, 300);
        assert_eq!(
            outcome.digest.checksum,
            Some(TrafficSpec::sustained(300, 42).reference_checksum())
        );
        assert_eq!(outcome.tiles.len(), 4);
        assert_eq!(outcome.tiles.iter().map(|t| t.queries).sum::<u64>(), 300);
    }

    #[test]
    fn outcome_is_bit_identical_across_tile_and_thread_counts() {
        let queries = traffic(500);
        let reference = FabricExecutor::paper(1, 1, BatchPolicy::SERIAL)
            .execute(&queries)
            .expect("reference run");
        for (rows, cols) in [(1, 2), (2, 2), (4, 1)] {
            for threads in [1, 4] {
                let fabric = FabricExecutor::paper(rows, cols, BatchPolicy::with_threads(threads));
                let outcome = fabric.execute(&queries).expect("sharded run");
                assert_eq!(outcome.digest, reference.digest, "{rows}x{cols}@{threads}");
                assert_eq!(outcome.counts, reference.counts);
                assert_eq!(outcome.ledger, reference.ledger);
            }
        }
    }

    #[test]
    fn fabric_ledger_is_the_bitwise_sum_of_tile_ledgers() {
        let fabric = FabricExecutor::paper(2, 2, BatchPolicy::SERIAL);
        let outcome = fabric.execute(&traffic(400)).expect("run");
        let mut folded = CostLedger::new();
        for tile in &outcome.tiles {
            folded.merge(&tile.ledger);
        }
        assert_eq!(folded, outcome.ledger);
        assert_eq!(
            folded.total_energy().get().to_bits(),
            outcome.ledger.total_energy().get().to_bits()
        );
    }

    #[test]
    fn kernels_agree_bit_for_bit() {
        let queries = traffic(200);
        let grid = TileGrid::paper_dna(2, 1);
        let placement = Placement::uniform(&grid, 1, WINDOW as u32);
        let sliced = FabricExecutor::new(
            grid.clone(),
            placement.clone(),
            BatchPolicy::SERIAL,
            KernelPolicy::BitSliced,
        )
        .expect("legal");
        let scalar =
            FabricExecutor::new(grid, placement, BatchPolicy::SERIAL, KernelPolicy::Scalar)
                .expect("legal");
        let a = sliced.execute(&queries).expect("sliced");
        let b = scalar.execute(&queries).expect("scalar");
        assert_eq!(a, b);
    }

    #[test]
    fn illegal_placements_are_rejected_at_construction() {
        let grid = TileGrid::paper_dna(1, 1);
        let placement = Placement::uniform(&grid, grid.tile_devices + 1, 8);
        assert!(matches!(
            FabricExecutor::new(
                grid,
                placement,
                BatchPolicy::SERIAL,
                KernelPolicy::default()
            ),
            Err(cim_arch::PlaceError::TileCapacity { .. })
        ));
    }

    #[test]
    fn backend_run_verifies_and_projection_matches_execution_ledger() {
        let fabric = FabricExecutor::paper(2, 2, BatchPolicy::SERIAL);
        let workload = ServeWorkload {
            traffic: TrafficSpec::sustained(250, 9),
        };
        let run = fabric.run(&workload).expect("run");
        assert!(workload.verify(&run.digest).is_ok());
        assert!(run.report.conserves(&run.ledger));
        // Projection (cost-only) equals execution's ledger bitwise: the
        // counts are charged through the same single definition.
        let (report, ledger) = fabric.project_attributed(&workload, 0.5);
        assert_eq!(ledger, run.ledger);
        assert_eq!(report.total_energy, run.report.total_energy);
    }
}
