//! cim-fabric: a tiled computation-in-memory fabric with an
//! async-style serving front-end.
//!
//! The paper's architecture is not one crossbar but a sea of them —
//! 18,750 clusters behind an H-tree. This crate lifts the simulator's
//! single-array assumption into that shape, in three layers:
//!
//! * [`query`] — the unit of serving work: small DNA-lookup / compare /
//!   add [`Query`]s, grouped into multi-tenant [`TrafficSpec`] streams.
//!   Every operand, expected value, cost count, and locality draw is a
//!   pure function of the query identity, never of where it executes.
//! * [`fabric`] — [`FabricExecutor`] dispatches query batches across a
//!   `cim_arch::TileGrid` of independent tiles via the deterministic
//!   parallel driver; per-tile exact [`cim_units::CountLedger`]s merge
//!   to the fabric ledger bit-for-bit (dyadic unit prices, see
//!   [`model::unit_costs`]).
//! * [`plane`] — the electrical floor under the ledgers:
//!   [`ElectricalPlane`] keeps one sneak-path sentinel crossbar per
//!   executed tile and batch-validates read margins through
//!   `cim_crossbar::solve_batch` (one independent solve per pool
//!   worker — the batch-of-solves axis).
//! * [`host`] — the conventional machine's side of the serving story:
//!   a Table-1-priced [`host_unit_costs`] table and a
//!   [`HostQueryExecutor`] that serves host-routed queries with plain
//!   arithmetic, making the host a first-class dispatch target.
//! * [`serve`] — [`ServeFrontEnd`] replays seeded arrivals through
//!   admission control (bounded queue + tenant quota), batches
//!   cross-tenant work, routes it across the two machines per a
//!   [`DispatchPolicy`] (always-CIM, always-host, or certified-cost
//!   hybrid), and reports per-tenant/per-machine accounts plus a
//!   p50/p99 latency histogram — all on a modelled integer-picosecond
//!   clock, bit-identical for any tile count and thread count.

pub mod fabric;
pub mod host;
pub mod model;
pub mod plane;
pub mod query;
pub mod serve;

pub use fabric::{FabricExecutor, FabricOutcome, ServeWorkload, TileOutcome};
pub use host::{host_unit_costs, HostBatchOutcome, HostQueryExecutor, HOST_UNITS};
pub use model::unit_costs;
pub use plane::{ElectricalPlane, TileMargin, MARGIN_FLOOR};
pub use query::{Query, QueryKind, QueryOperands, TenantId, TrafficSpec, ADD_BITS, WINDOW};
pub use serve::{
    DispatchPolicy, LatencyHistogram, ServeConfig, ServeFrontEnd, ServeReport, TenantAccount,
    TileAccount,
};
