//! The DNA experiment specification and its paper-scale op counts.

use serde::{Deserialize, Serialize};

/// Parameters of the DNA read-mapping experiment.
///
/// Table 1: "200 GB of DNA data is compared to a healthy reference of
/// 3 GB", coverage 50, read length 100, and the closed-form counts
///
/// ```text
/// no_short_reads  = coverage · ref_len / read_len
/// no_comparisons  = 4 · no_short_reads   (one per A/C/G/T nucleotide)
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DnaSpec {
    /// Reference length in characters.
    pub ref_len: u64,
    /// Coverage factor.
    pub coverage: u64,
    /// Read length in characters.
    pub read_len: u64,
}

impl DnaSpec {
    /// The paper-scale experiment: 3 GB reference, 50× coverage,
    /// 100-character reads.
    pub fn paper() -> Self {
        Self {
            ref_len: 3_000_000_000,
            coverage: 50,
            read_len: 100,
        }
    }

    /// A laptop-scale configuration with the same shape (used by the
    /// simulating executors; the closed-form counts extrapolate to paper
    /// scale).
    pub fn scaled(ref_len: u64) -> Self {
        Self {
            ref_len,
            ..Self::paper()
        }
    }

    /// `no_short_reads = coverage · ref_len / read_len`.
    pub fn short_reads(&self) -> u64 {
        self.coverage * self.ref_len / self.read_len
    }

    /// `no_comparisons = 4 · no_short_reads` — Table 1's comparison count
    /// ("for each A, C, G, T nucleotides").
    pub fn comparisons(&self) -> u64 {
        4 * self.short_reads()
    }

    /// Total input data volume in bytes (coverage × reference, 1 byte
    /// per character): the paper's "200 GB of DNA data".
    pub fn data_volume_bytes(&self) -> u64 {
        self.coverage * self.ref_len
    }

    /// Scale factor between this spec and the paper's.
    pub fn scale_vs_paper(&self) -> f64 {
        self.ref_len as f64 / Self::paper().ref_len as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_counts_match_table1() {
        let s = DnaSpec::paper();
        // 50 · 3e9 / 100 = 1.5e9 short reads.
        assert_eq!(s.short_reads(), 1_500_000_000);
        // 4 · 1.5e9 = 6e9 comparisons.
        assert_eq!(s.comparisons(), 6_000_000_000);
        // 50 × 3 GB = 150 GB of reads (the paper rounds to "200 GB").
        assert_eq!(s.data_volume_bytes(), 150_000_000_000);
    }

    #[test]
    fn scaled_specs_preserve_shape() {
        let s = DnaSpec::scaled(3_000_000);
        assert_eq!(s.coverage, 50);
        assert_eq!(s.read_len, 100);
        assert!((s.scale_vs_paper() - 1e-3).abs() < 1e-15);
        assert_eq!(s.comparisons(), 6_000_000);
    }
}
