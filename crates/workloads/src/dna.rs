//! The DNA experiment specification and its paper-scale op counts.

use serde::{Deserialize, Serialize};

use crate::workload::{ExecutionDigest, ProjectionKind, Workload, WorkloadError};

/// Parameters of the DNA read-mapping experiment.
///
/// Table 1: "200 GB of DNA data is compared to a healthy reference of
/// 3 GB", coverage 50, read length 100, and the closed-form counts
///
/// ```text
/// no_short_reads  = coverage · ref_len / read_len
/// no_comparisons  = 4 · no_short_reads   (one per A/C/G/T nucleotide)
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DnaSpec {
    /// Reference length in characters.
    pub ref_len: u64,
    /// Coverage factor.
    pub coverage: u64,
    /// Read length in characters.
    pub read_len: u64,
}

impl DnaSpec {
    /// The paper-scale experiment: 3 GB reference, 50× coverage,
    /// 100-character reads.
    pub fn paper() -> Self {
        Self {
            ref_len: 3_000_000_000,
            coverage: 50,
            read_len: 100,
        }
    }

    /// A laptop-scale configuration with the same shape (used by the
    /// simulating executors; the closed-form counts extrapolate to paper
    /// scale).
    pub fn scaled(ref_len: u64) -> Self {
        Self {
            ref_len,
            ..Self::paper()
        }
    }

    /// `no_short_reads = coverage · ref_len / read_len`.
    pub fn short_reads(&self) -> u64 {
        self.coverage * self.ref_len / self.read_len
    }

    /// `no_comparisons = 4 · no_short_reads` — Table 1's comparison count
    /// ("for each A, C, G, T nucleotides").
    pub fn comparisons(&self) -> u64 {
        4 * self.short_reads()
    }

    /// Total input data volume in bytes (coverage × reference, 1 byte
    /// per character): the paper's "200 GB of DNA data".
    pub fn data_volume_bytes(&self) -> u64 {
        self.coverage * self.ref_len
    }

    /// Scale factor between this spec and the paper's.
    pub fn scale_vs_paper(&self) -> f64 {
        self.ref_len as f64 / Self::paper().ref_len as f64
    }
}

/// The healthcare workload: a [`DnaSpec`] plus the seed that generates
/// its genome and short reads.
///
/// Executors run the read-mapping pipeline per short read; the digest
/// counts reads processed (`items_total`), reads that recovered their
/// true position (`items_verified`), and character comparisons
/// (`operations`). Verification requires ≥70% of 1%-error reads to map —
/// the seed-and-extend mapper's expected recovery floor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DnaWorkload {
    /// The (scaled) specification to execute.
    pub spec: DnaSpec,
    /// Seed for genome generation and read sampling.
    pub seed: u64,
}

impl DnaWorkload {
    /// Minimum fraction of reads that must recover their true position.
    pub const MIN_MAPPED_PERCENT: u32 = 70;

    /// The paper-scale workload (projection-only; far above any
    /// executable cap).
    pub fn paper(seed: u64) -> Self {
        Self {
            spec: DnaSpec::paper(),
            seed,
        }
    }

    /// A laptop-scale workload with the paper's shape.
    pub fn scaled(ref_len: u64, seed: u64) -> Self {
        Self {
            spec: DnaSpec::scaled(ref_len),
            seed,
        }
    }

    /// The spec clamped to an executor's reference-length cap, shape
    /// preserved (backends with bounded functional passes execute this).
    pub fn executable_spec(&self, ref_len_cap: u64) -> DnaSpec {
        DnaSpec {
            ref_len: self.spec.ref_len.min(ref_len_cap),
            ..self.spec
        }
    }
}

impl Workload for DnaWorkload {
    fn name(&self) -> String {
        "DNA sequencing".to_string()
    }

    fn seed(&self) -> u64 {
        self.seed
    }

    fn paper_ops(&self) -> u64 {
        DnaSpec::paper().comparisons()
    }

    fn scale_vs_paper(&self) -> f64 {
        self.spec.scale_vs_paper()
    }

    fn projection(&self) -> ProjectionKind {
        // Table 1's assumption for the sorted-index workload.
        ProjectionKind::PaperScale {
            assumed_hit_ratio: 0.5,
        }
    }

    fn verify(&self, digest: &ExecutionDigest) -> Result<(), WorkloadError> {
        if digest.items_total == 0 {
            return Err(WorkloadError::EmptyExecution);
        }
        // Backends may execute a capped spec, so the read count is
        // checked for consistency against itself (mapping ratio) rather
        // than the uncapped closed form.
        if digest.items_verified * 100 < digest.items_total * u64::from(Self::MIN_MAPPED_PERCENT) {
            return Err(WorkloadError::VerificationShortfall {
                verified: digest.items_verified,
                total: digest.items_total,
                required_percent: Self::MIN_MAPPED_PERCENT,
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_counts_match_table1() {
        let s = DnaSpec::paper();
        // 50 · 3e9 / 100 = 1.5e9 short reads.
        assert_eq!(s.short_reads(), 1_500_000_000);
        // 4 · 1.5e9 = 6e9 comparisons.
        assert_eq!(s.comparisons(), 6_000_000_000);
        // 50 × 3 GB = 150 GB of reads (the paper rounds to "200 GB").
        assert_eq!(s.data_volume_bytes(), 150_000_000_000);
    }

    #[test]
    fn scaled_specs_preserve_shape() {
        let s = DnaSpec::scaled(3_000_000);
        assert_eq!(s.coverage, 50);
        assert_eq!(s.read_len, 100);
        assert!((s.scale_vs_paper() - 1e-3).abs() < 1e-15);
        assert_eq!(s.comparisons(), 6_000_000);
    }

    #[test]
    fn workload_verifies_on_mapping_ratio() {
        let w = DnaWorkload::scaled(30_000, 1);
        let good = ExecutionDigest {
            items_total: 100,
            items_verified: 92,
            operations: 40_000,
            checksum: None,
        };
        assert!(w.verify(&good).is_ok());

        let shortfall = ExecutionDigest {
            items_verified: 42,
            ..good
        };
        assert!(matches!(
            w.verify(&shortfall),
            Err(WorkloadError::VerificationShortfall { verified: 42, .. })
        ));

        let empty = ExecutionDigest {
            items_total: 0,
            items_verified: 0,
            operations: 0,
            checksum: None,
        };
        assert_eq!(w.verify(&empty), Err(WorkloadError::EmptyExecution));
    }

    #[test]
    fn executable_spec_clamps_only_the_reference() {
        let w = DnaWorkload::paper(0);
        let capped = w.executable_spec(1 << 20);
        assert_eq!(capped.ref_len, 1 << 20);
        assert_eq!(capped.coverage, 50);
        assert_eq!(capped.read_len, 100);
        let small = DnaWorkload::scaled(10_000, 0);
        assert_eq!(small.executable_spec(1 << 20), small.spec);
    }

    #[test]
    fn projection_carries_table1_assumption() {
        match DnaWorkload::scaled(10_000, 0).projection() {
            ProjectionKind::PaperScale { assumed_hit_ratio } => {
                assert!((assumed_hit_ratio - 0.5).abs() < 1e-12);
            }
            other => panic!("unexpected projection {other:?}"),
        }
    }
}
