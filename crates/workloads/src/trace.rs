//! Memory-access traces for cache simulation.

use serde::{Deserialize, Serialize};

/// One memory reference.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Access {
    /// Byte address in the simulated address space.
    pub address: u64,
    /// Whether the reference writes.
    pub is_write: bool,
}

impl Access {
    /// A read reference.
    pub fn read(address: u64) -> Self {
        Self {
            address,
            is_write: false,
        }
    }

    /// A write reference.
    pub fn write(address: u64) -> Self {
        Self {
            address,
            is_write: true,
        }
    }
}

/// A sequence of memory references produced by a workload.
///
/// The DNA index emits these during lookups (binary-search probes over
/// the sorted k-mer table plus sequential reference verification) so the
/// cache simulator can measure the hit ratio the paper assumes.
#[derive(Debug, Default, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemoryTrace {
    accesses: Vec<Access>,
}

impl MemoryTrace {
    /// An empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a reference.
    pub fn push(&mut self, access: Access) {
        self.accesses.push(access);
    }

    /// Appends a read at `address`.
    pub fn read(&mut self, address: u64) {
        self.push(Access::read(address));
    }

    /// Appends a write at `address`.
    pub fn write(&mut self, address: u64) {
        self.push(Access::write(address));
    }

    /// The recorded references.
    pub fn accesses(&self) -> &[Access] {
        &self.accesses
    }

    /// Number of references.
    pub fn len(&self) -> usize {
        self.accesses.len()
    }

    /// True if no references were recorded.
    pub fn is_empty(&self) -> bool {
        self.accesses.is_empty()
    }

    /// Unique cache lines touched, for a given line size.
    ///
    /// # Panics
    ///
    /// Panics if `line_bytes` is zero.
    pub fn unique_lines(&self, line_bytes: u64) -> usize {
        assert!(line_bytes > 0, "line size must be non-zero");
        let mut lines: Vec<u64> = self
            .accesses
            .iter()
            .map(|a| a.address / line_bytes)
            .collect();
        lines.sort_unstable();
        lines.dedup();
        lines.len()
    }
}

impl Extend<Access> for MemoryTrace {
    fn extend<T: IntoIterator<Item = Access>>(&mut self, iter: T) {
        self.accesses.extend(iter);
    }
}

impl FromIterator<Access> for MemoryTrace {
    fn from_iter<T: IntoIterator<Item = Access>>(iter: T) -> Self {
        Self {
            accesses: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_reads_and_writes_in_order() {
        let mut t = MemoryTrace::new();
        t.read(0x100);
        t.write(0x140);
        assert_eq!(t.len(), 2);
        assert_eq!(t.accesses()[0], Access::read(0x100));
        assert!(t.accesses()[1].is_write);
    }

    #[test]
    fn unique_lines_dedupes_by_line() {
        let t: MemoryTrace = [0x00u64, 0x08, 0x40, 0x44, 0x80]
            .iter()
            .map(|&a| Access::read(a))
            .collect();
        assert_eq!(t.unique_lines(64), 3);
        assert_eq!(t.unique_lines(8), 4); // 0x40 and 0x44 share an 8B line
    }

    #[test]
    fn extend_and_collect() {
        let mut t = MemoryTrace::new();
        t.extend((0..4).map(|i| Access::read(i * 64)));
        assert_eq!(t.len(), 4);
        assert!(!t.is_empty());
        assert!(MemoryTrace::new().is_empty());
    }
}
