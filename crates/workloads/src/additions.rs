//! The mathematics experiment: bulk parallel additions.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::workload::{ExecutionDigest, ProjectionKind, Workload, WorkloadError};

/// The paper's "10⁶ parallel addition operations" workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AdditionWorkload {
    /// Number of additions.
    pub n_ops: u64,
    /// Operand width in bits (paper: 32).
    pub bits: u32,
    /// RNG seed for operand generation.
    pub seed: u64,
}

impl AdditionWorkload {
    /// The paper-scale workload: 10⁶ 32-bit additions.
    pub fn paper(seed: u64) -> Self {
        Self {
            n_ops: 1_000_000,
            bits: 32,
            seed,
        }
    }

    /// A scaled-down workload with the same shape.
    pub fn scaled(n_ops: u64, seed: u64) -> Self {
        Self {
            n_ops,
            ..Self::paper(seed)
        }
    }

    /// Iterates the operand pairs (deterministic from the seed).
    pub fn operands(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mask = if self.bits == 64 {
            u64::MAX
        } else {
            (1u64 << self.bits) - 1
        };
        (0..self.n_ops).map(move |_| (rng.gen::<u64>() & mask, rng.gen::<u64>() & mask))
    }

    /// The wrapping-sum checksum of all results — executors compare
    /// against this to prove they computed every addition.
    pub fn checksum(&self) -> u64 {
        self.operands()
            .fold(0u64, |acc, (a, b)| acc.wrapping_add(a.wrapping_add(b)))
    }
}

impl Workload for AdditionWorkload {
    fn name(&self) -> String {
        format!("{} additions", self.n_ops)
    }

    fn seed(&self) -> u64 {
        self.seed
    }

    fn paper_ops(&self) -> u64 {
        // The workload executes in full at whatever size it is; its
        // "paper" count is its own count.
        self.n_ops
    }

    fn scale_vs_paper(&self) -> f64 {
        self.n_ops as f64 / Self::paper(self.seed).n_ops as f64
    }

    fn projection(&self) -> ProjectionKind {
        ProjectionKind::ExecutedScale
    }

    fn verify(&self, digest: &ExecutionDigest) -> Result<(), WorkloadError> {
        if digest.items_total != self.n_ops {
            return Err(WorkloadError::ItemCountMismatch {
                expected: self.n_ops,
                got: digest.items_total,
            });
        }
        let expected = self.checksum();
        if digest.checksum != Some(expected) {
            return Err(WorkloadError::ChecksumMismatch {
                expected,
                got: digest.checksum,
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_workload_shape() {
        let w = AdditionWorkload::paper(1);
        assert_eq!(w.n_ops, 1_000_000);
        assert_eq!(w.bits, 32);
    }

    #[test]
    fn operands_respect_width_and_count() {
        let w = AdditionWorkload {
            n_ops: 1_000,
            bits: 8,
            seed: 5,
        };
        let ops: Vec<_> = w.operands().collect();
        assert_eq!(ops.len(), 1_000);
        assert!(ops.iter().all(|&(a, b)| a < 256 && b < 256));
    }

    #[test]
    fn checksum_is_deterministic_and_seed_sensitive() {
        let a = AdditionWorkload::scaled(500, 7);
        assert_eq!(a.checksum(), a.checksum());
        let b = AdditionWorkload::scaled(500, 8);
        assert_ne!(a.checksum(), b.checksum());
    }

    #[test]
    fn full_width_operands() {
        let w = AdditionWorkload {
            n_ops: 10,
            bits: 64,
            seed: 2,
        };
        assert_eq!(w.operands().count(), 10);
    }

    #[test]
    fn workload_verifies_count_and_checksum() {
        let w = AdditionWorkload::scaled(256, 3);
        let good = ExecutionDigest {
            items_total: 256,
            items_verified: 256,
            operations: 256,
            checksum: Some(w.checksum()),
        };
        assert!(w.verify(&good).is_ok());

        let wrong_sum = ExecutionDigest {
            checksum: Some(w.checksum() ^ 1),
            ..good
        };
        assert!(matches!(
            w.verify(&wrong_sum),
            Err(WorkloadError::ChecksumMismatch { .. })
        ));

        let missing_sum = ExecutionDigest {
            checksum: None,
            ..good
        };
        assert!(matches!(
            w.verify(&missing_sum),
            Err(WorkloadError::ChecksumMismatch { got: None, .. })
        ));

        let short = ExecutionDigest {
            items_total: 255,
            ..good
        };
        assert_eq!(
            w.verify(&short),
            Err(WorkloadError::ItemCountMismatch {
                expected: 256,
                got: 255
            })
        );
    }
}
