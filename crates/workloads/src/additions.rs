//! The mathematics experiment: bulk parallel additions.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::workload::{ExecutionDigest, ProjectionKind, Workload, WorkloadError};

/// The paper's "10⁶ parallel addition operations" workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AdditionWorkload {
    /// Number of additions.
    pub n_ops: u64,
    /// Operand width in bits (paper: 32).
    pub bits: u32,
    /// RNG seed for operand generation.
    pub seed: u64,
}

impl AdditionWorkload {
    /// The paper-scale workload: 10⁶ 32-bit additions.
    pub fn paper(seed: u64) -> Self {
        Self {
            n_ops: 1_000_000,
            bits: 32,
            seed,
        }
    }

    /// A scaled-down workload with the same shape.
    pub fn scaled(n_ops: u64, seed: u64) -> Self {
        Self {
            n_ops,
            ..Self::paper(seed)
        }
    }

    /// Iterates the operand pairs (deterministic from the seed).
    pub fn operands(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mask = if self.bits == 64 {
            u64::MAX
        } else {
            (1u64 << self.bits) - 1
        };
        (0..self.n_ops).map(move |_| (rng.gen::<u64>() & mask, rng.gen::<u64>() & mask))
    }

    /// The wrapping-sum checksum of all results — executors compare
    /// against this to prove they computed every addition.
    pub fn checksum(&self) -> u64 {
        self.operands()
            .fold(0u64, |acc, (a, b)| acc.wrapping_add(a.wrapping_add(b)))
    }
}

/// A workload whose unit stream can be divided into contiguous shards,
/// each a [`Workload`] in its own right — the seam work-partitioned
/// dispatch executes through.
///
/// The contract: the shards of any partition of `0..units()` generate
/// exactly the workload's units (so shard checksums wrapping-sum to the
/// whole checksum), and the full-range shard `shard(0, units(), c)`
/// executes the structurally identical code path as the whole workload,
/// so its `RunOutcome` is bit-identical when `c` equals the whole run's
/// machine size.
pub trait Shardable: Workload {
    /// The shard type; executes like any other workload.
    type Shard: Workload;

    /// Number of divisible work units (for additions: the op count).
    fn units(&self) -> u64;

    /// The contiguous shard covering units `offset..offset + len`,
    /// executed on a machine sized for `machine_ops` units. Holding
    /// `machine_ops` fixed across shards models partitioning one
    /// workload across two fixed-capacity machines (rather than
    /// shrinking each machine to its shard).
    fn shard(&self, offset: u64, len: u64, machine_ops: u64) -> Self::Shard;
}

/// A contiguous slice of an [`AdditionWorkload`]'s operand stream.
///
/// Generates exactly the parent workload's operands `offset..offset+len`
/// (the operand RNG draws two words per op, so the shard skips
/// `2 × offset` draws and then streams `len` pairs), and carries the
/// `machine_ops` capacity its executing machine should be sized for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AdditionShard {
    /// Total ops of the parent workload (for bounds and naming).
    pub total_ops: u64,
    /// Operand width in bits, inherited from the parent.
    pub bits: u32,
    /// The parent workload's RNG seed.
    pub seed: u64,
    /// First unit index this shard covers.
    pub offset: u64,
    /// Number of units this shard covers.
    pub len: u64,
    /// Machine sizing capacity: executors build their machine for this
    /// many ops, not for `len`, so every shard of a split runs on the
    /// same fixed-capacity machine.
    pub machine_ops: u64,
}

impl AdditionShard {
    /// Iterates this shard's operand pairs — exactly the parent
    /// stream's pairs `offset..offset + len`.
    pub fn operands(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        let mut rng = StdRng::seed_from_u64(self.seed);
        // Each op consumes exactly two draws regardless of the mask.
        for _ in 0..2 * self.offset {
            let _ = rng.gen::<u64>();
        }
        let mask = if self.bits == 64 {
            u64::MAX
        } else {
            (1u64 << self.bits) - 1
        };
        (0..self.len).map(move |_| (rng.gen::<u64>() & mask, rng.gen::<u64>() & mask))
    }

    /// The wrapping-sum checksum over this shard's results. Shard
    /// checksums of a partition wrapping-sum to the whole workload's
    /// checksum (wrapping addition is associative and commutative).
    pub fn checksum(&self) -> u64 {
        self.operands()
            .fold(0u64, |acc, (a, b)| acc.wrapping_add(a.wrapping_add(b)))
    }
}

impl Workload for AdditionShard {
    fn name(&self) -> String {
        format!(
            "additions[{}..{}) of {}",
            self.offset,
            self.offset + self.len,
            self.total_ops
        )
    }

    fn seed(&self) -> u64 {
        self.seed
    }

    fn paper_ops(&self) -> u64 {
        self.len
    }

    fn scale_vs_paper(&self) -> f64 {
        self.len as f64 / AdditionWorkload::paper(self.seed).n_ops as f64
    }

    fn projection(&self) -> ProjectionKind {
        ProjectionKind::ExecutedScale
    }

    fn verify(&self, digest: &ExecutionDigest) -> Result<(), WorkloadError> {
        if digest.items_total != self.len {
            return Err(WorkloadError::ItemCountMismatch {
                expected: self.len,
                got: digest.items_total,
            });
        }
        let expected = self.checksum();
        if digest.checksum != Some(expected) {
            return Err(WorkloadError::ChecksumMismatch {
                expected,
                got: digest.checksum,
            });
        }
        Ok(())
    }
}

impl Shardable for AdditionWorkload {
    type Shard = AdditionShard;

    fn units(&self) -> u64 {
        self.n_ops
    }

    fn shard(&self, offset: u64, len: u64, machine_ops: u64) -> AdditionShard {
        assert!(
            offset.checked_add(len).is_some_and(|end| end <= self.n_ops),
            "shard [{offset}, {offset}+{len}) exceeds {} ops",
            self.n_ops
        );
        AdditionShard {
            total_ops: self.n_ops,
            bits: self.bits,
            seed: self.seed,
            offset,
            len,
            machine_ops,
        }
    }
}

impl Workload for AdditionWorkload {
    fn name(&self) -> String {
        format!("{} additions", self.n_ops)
    }

    fn seed(&self) -> u64 {
        self.seed
    }

    fn paper_ops(&self) -> u64 {
        // The workload executes in full at whatever size it is; its
        // "paper" count is its own count.
        self.n_ops
    }

    fn scale_vs_paper(&self) -> f64 {
        self.n_ops as f64 / Self::paper(self.seed).n_ops as f64
    }

    fn projection(&self) -> ProjectionKind {
        ProjectionKind::ExecutedScale
    }

    fn verify(&self, digest: &ExecutionDigest) -> Result<(), WorkloadError> {
        if digest.items_total != self.n_ops {
            return Err(WorkloadError::ItemCountMismatch {
                expected: self.n_ops,
                got: digest.items_total,
            });
        }
        let expected = self.checksum();
        if digest.checksum != Some(expected) {
            return Err(WorkloadError::ChecksumMismatch {
                expected,
                got: digest.checksum,
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_workload_shape() {
        let w = AdditionWorkload::paper(1);
        assert_eq!(w.n_ops, 1_000_000);
        assert_eq!(w.bits, 32);
    }

    #[test]
    fn operands_respect_width_and_count() {
        let w = AdditionWorkload {
            n_ops: 1_000,
            bits: 8,
            seed: 5,
        };
        let ops: Vec<_> = w.operands().collect();
        assert_eq!(ops.len(), 1_000);
        assert!(ops.iter().all(|&(a, b)| a < 256 && b < 256));
    }

    #[test]
    fn checksum_is_deterministic_and_seed_sensitive() {
        let a = AdditionWorkload::scaled(500, 7);
        assert_eq!(a.checksum(), a.checksum());
        let b = AdditionWorkload::scaled(500, 8);
        assert_ne!(a.checksum(), b.checksum());
    }

    #[test]
    fn full_width_operands() {
        let w = AdditionWorkload {
            n_ops: 10,
            bits: 64,
            seed: 2,
        };
        assert_eq!(w.operands().count(), 10);
    }

    #[test]
    fn shards_partition_operands_and_checksum() {
        let w = AdditionWorkload::scaled(1_000, 11);
        let splits = [(0u64, 0u64), (0, 1), (0, 400), (400, 600), (999, 1)];
        for (offset, len) in splits {
            let shard = w.shard(offset, len, w.n_ops);
            let expected: Vec<_> = w
                .operands()
                .skip(offset as usize)
                .take(len as usize)
                .collect();
            assert_eq!(shard.operands().collect::<Vec<_>>(), expected);
        }
        // A two-way partition's checksums wrapping-sum to the whole.
        let left = w.shard(0, 400, w.n_ops);
        let right = w.shard(400, 600, w.n_ops);
        assert_eq!(left.checksum().wrapping_add(right.checksum()), w.checksum());
    }

    #[test]
    fn full_range_shard_matches_the_whole_workload() {
        let w = AdditionWorkload::scaled(512, 9);
        let shard = w.shard(0, w.units(), w.units());
        assert_eq!(
            shard.operands().collect::<Vec<_>>(),
            w.operands().collect::<Vec<_>>()
        );
        assert_eq!(shard.checksum(), w.checksum());
        let digest = ExecutionDigest {
            items_total: 512,
            items_verified: 512,
            operations: 512,
            checksum: Some(w.checksum()),
        };
        assert!(shard.verify(&digest).is_ok());
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn out_of_range_shards_are_rejected() {
        let w = AdditionWorkload::scaled(100, 1);
        let _ = w.shard(64, 64, 100);
    }

    #[test]
    fn shard_verify_rejects_wrong_counts_and_sums() {
        let w = AdditionWorkload::scaled(300, 4);
        let shard = w.shard(100, 50, 300);
        let good = ExecutionDigest {
            items_total: 50,
            items_verified: 50,
            operations: 50,
            checksum: Some(shard.checksum()),
        };
        assert!(shard.verify(&good).is_ok());
        let bad_count = ExecutionDigest {
            items_total: 49,
            ..good
        };
        assert!(matches!(
            shard.verify(&bad_count),
            Err(WorkloadError::ItemCountMismatch { .. })
        ));
        let bad_sum = ExecutionDigest {
            checksum: Some(shard.checksum() ^ 1),
            ..good
        };
        assert!(matches!(
            shard.verify(&bad_sum),
            Err(WorkloadError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn workload_verifies_count_and_checksum() {
        let w = AdditionWorkload::scaled(256, 3);
        let good = ExecutionDigest {
            items_total: 256,
            items_verified: 256,
            operations: 256,
            checksum: Some(w.checksum()),
        };
        assert!(w.verify(&good).is_ok());

        let wrong_sum = ExecutionDigest {
            checksum: Some(w.checksum() ^ 1),
            ..good
        };
        assert!(matches!(
            w.verify(&wrong_sum),
            Err(WorkloadError::ChecksumMismatch { .. })
        ));

        let missing_sum = ExecutionDigest {
            checksum: None,
            ..good
        };
        assert!(matches!(
            w.verify(&missing_sum),
            Err(WorkloadError::ChecksumMismatch { got: None, .. })
        ));

        let short = ExecutionDigest {
            items_total: 255,
            ..good
        };
        assert_eq!(
            w.verify(&short),
            Err(WorkloadError::ItemCountMismatch {
                expected: 256,
                got: 255
            })
        );
    }
}
