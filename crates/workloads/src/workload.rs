//! The [`Workload`] abstraction: what the paper's applications share.
//!
//! A workload owns three responsibilities, mirroring the evaluation
//! recipe of Section III.B:
//!
//! 1. **generate** — deterministic input synthesis from a seed (operand
//!    streams, genomes, short reads);
//! 2. **execute-per-item** — an executor runs every item through real
//!    machine semantics and condenses the functional results into an
//!    [`ExecutionDigest`];
//! 3. **verify** — the workload checks the digest against ground truth
//!    it can recompute independently ([`Workload::verify`]).
//!
//! The closed-form paper-scale hook ([`Workload::paper_ops`] +
//! [`Workload::projection`]) lets drivers decide whether Table-2 numbers
//! come from the executed scale or from a projection to the paper's
//! problem size.
//!
//! Execution itself lives behind `cim-sim`'s `ExecutionBackend` trait;
//! this crate stays machine-agnostic.

use serde::{Deserialize, Serialize};

/// Functional summary of one executed run, produced by a backend and
/// checked by [`Workload::verify`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExecutionDigest {
    /// Items processed (short reads mapped, additions computed, …).
    pub items_total: u64,
    /// Items whose result matched ground truth (reads that recovered
    /// their true position, additions folded into the checksum, …).
    pub items_verified: u64,
    /// Machine operations executed (character comparisons, additions).
    pub operations: u64,
    /// Order-insensitive checksum over the results, when the workload
    /// defines one.
    pub checksum: Option<u64>,
}

/// How a workload's Table-2 numbers reach paper scale.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ProjectionKind {
    /// The run already executes at the scale being reported.
    ExecutedScale,
    /// Project via the closed-form operation counts, parameterised by a
    /// conventional-cache hit ratio (Table 1 assumes this value).
    PaperScale {
        /// The hit ratio Table 1 assumes for this workload.
        assumed_hit_ratio: f64,
    },
}

/// Why a digest failed verification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WorkloadError {
    /// The executor's checksum disagrees with the reference (or the
    /// executor reported none where one is required).
    ChecksumMismatch {
        /// Reference checksum recomputed by the workload.
        expected: u64,
        /// What the executor reported.
        got: Option<u64>,
    },
    /// The executor processed the wrong number of items.
    ItemCountMismatch {
        /// Items the workload generated.
        expected: u64,
        /// Items the digest accounts for.
        got: u64,
    },
    /// Too few items passed their ground-truth check.
    VerificationShortfall {
        /// Items that passed.
        verified: u64,
        /// Items processed.
        total: u64,
        /// Minimum passing fraction, in percent.
        required_percent: u32,
    },
    /// The executor processed no items at all.
    EmptyExecution,
}

impl std::fmt::Display for WorkloadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WorkloadError::ChecksumMismatch { expected, got } => match got {
                Some(got) => {
                    write!(
                        f,
                        "checksum mismatch: expected {expected:#018x}, got {got:#018x}"
                    )
                }
                None => write!(
                    f,
                    "checksum mismatch: expected {expected:#018x}, executor reported none"
                ),
            },
            WorkloadError::ItemCountMismatch { expected, got } => {
                write!(f, "item count mismatch: expected {expected}, got {got}")
            }
            WorkloadError::VerificationShortfall {
                verified,
                total,
                required_percent,
            } => write!(
                f,
                "verification shortfall: {verified}/{total} items passed \
                 (at least {required_percent}% required)"
            ),
            WorkloadError::EmptyExecution => write!(f, "executor processed no items"),
        }
    }
}

impl std::error::Error for WorkloadError {}

/// A paper application: deterministic generation, per-item execution by
/// a backend, and independent verification of the digest.
pub trait Workload {
    /// Human-readable label used in reports ("DNA sequencing", …).
    fn name(&self) -> String;

    /// Seed driving input generation (and, by convention, the executors).
    fn seed(&self) -> u64;

    /// Closed-form operation count at the paper's full problem size.
    fn paper_ops(&self) -> u64;

    /// Ratio of this workload's size to the paper's.
    fn scale_vs_paper(&self) -> f64;

    /// Whether reports come from the executed scale or the paper-scale
    /// projection.
    fn projection(&self) -> ProjectionKind;

    /// Checks an executor's digest against independently recomputed
    /// ground truth.
    fn verify(&self, digest: &ExecutionDigest) -> Result<(), WorkloadError>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_render_their_evidence() {
        let checksum = WorkloadError::ChecksumMismatch {
            expected: 0xabcd,
            got: Some(0x1234),
        };
        let rendered = checksum.to_string();
        assert!(rendered.contains("0x000000000000abcd") && rendered.contains("0x0000000000001234"));

        let shortfall = WorkloadError::VerificationShortfall {
            verified: 3,
            total: 10,
            required_percent: 70,
        };
        assert!(shortfall.to_string().contains("3/10"));
        assert!(WorkloadError::EmptyExecution
            .to_string()
            .contains("no items"));
    }
}
