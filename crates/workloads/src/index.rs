//! The sorted k-mer index — the paper's "sorted index of the reference
//! DNA that can be used to identify the location of matches and
//! mismatches in another sequence rapidly".
//!
//! The index is a position-sorted table of `(k-mer, position)` pairs,
//! queried by binary search. This is precisely the structure whose access
//! pattern the paper blames for "eliminating available data locality in
//! the reference and causing huge number of cache misses": each probe is
//! a random walk over a table the size of the reference.

use serde::{Deserialize, Serialize};

use crate::genome::Genome;
use crate::reads::ShortRead;
use crate::trace::MemoryTrace;

/// Result of mapping one read through the index.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LookupOutcome {
    /// Reference positions whose seed k-mer matched, verified in full.
    pub mapped_positions: Vec<usize>,
    /// Character comparisons performed (index probes + verification).
    pub comparisons: u64,
    /// Mismatching characters encountered during verification.
    pub mismatches: u64,
}

/// A sorted index over all k-mers of a reference genome.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SortedKmerIndex {
    /// Seed length.
    k: usize,
    /// `(packed k-mer, start position)` sorted by k-mer.
    entries: Vec<(u64, u32)>,
    /// Base address of the index in the simulated address space (the
    /// reference itself occupies `[0, genome_len)`).
    index_base: u64,
}

/// Bytes per index entry in the simulated layout (u64 key + u32 pos,
/// padded).
const ENTRY_BYTES: u64 = 16;

impl SortedKmerIndex {
    /// Builds the index of all overlapping `k`-mers of `genome`.
    ///
    /// # Panics
    ///
    /// Panics if `k` is zero, exceeds 32, or the genome is shorter than
    /// `k`.
    pub fn build(genome: &Genome, k: usize) -> Self {
        assert!(k > 0 && k <= 32, "seed length must be in 1..=32");
        assert!(genome.len() >= k, "genome shorter than the seed");
        let codes = genome.codes();
        let mut entries: Vec<(u64, u32)> = (0..=codes.len() - k)
            .map(|pos| (Self::pack(&codes[pos..pos + k]), pos as u32))
            .collect();
        entries.sort_unstable();
        Self {
            k,
            entries,
            index_base: genome.len() as u64,
        }
    }

    /// Packs up to 32 2-bit symbols into a `u64` key.
    fn pack(symbols: &[u8]) -> u64 {
        symbols
            .iter()
            .fold(0u64, |acc, &s| (acc << 2) | u64::from(s))
    }

    /// Seed length.
    pub fn seed_len(&self) -> usize {
        self.k
    }

    /// Number of indexed k-mers.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if the index is empty (cannot happen post-construction).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Maps a read: binary-search the seed, then verify every candidate
    /// position character-by-character against the reference.
    ///
    /// Every index probe and reference character read is appended to
    /// `trace` (addresses: reference at `[0, L)`, index entries above
    /// it), and every character comparison is counted — these feed the
    /// cache simulator and the Table-2 operation accounting respectively.
    pub fn map_read(
        &self,
        genome: &Genome,
        read: &ShortRead,
        trace: &mut MemoryTrace,
    ) -> LookupOutcome {
        let seed = Self::pack(&read.symbols[..self.k]);
        let mut comparisons = 0u64;

        // Binary search over the sorted entries: each probe touches one
        // entry — a random-walk access pattern over the whole table.
        let mut lo = 0usize;
        let mut hi = self.entries.len();
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            trace.read(self.index_base + mid as u64 * ENTRY_BYTES);
            comparisons += 1;
            if self.entries[mid].0 < seed {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        // Walk the run of equal seeds.
        let mut mapped_positions = Vec::new();
        let mut mismatches = 0u64;
        let mut i = lo;
        while i < self.entries.len() && self.entries[i].0 == seed {
            trace.read(self.index_base + i as u64 * ENTRY_BYTES);
            let pos = self.entries[i].1 as usize;
            if pos + read.symbols.len() <= genome.len() {
                let (ok, cmp, mm) = self.verify(genome, read, pos, trace);
                comparisons += cmp;
                mismatches += mm;
                if ok {
                    mapped_positions.push(pos);
                }
            }
            i += 1;
        }
        LookupOutcome {
            mapped_positions,
            comparisons,
            mismatches,
        }
    }

    /// Verifies a candidate alignment with early exit after too many
    /// mismatches (2% of the read length, the usual seed-and-extend
    /// tolerance).
    fn verify(
        &self,
        genome: &Genome,
        read: &ShortRead,
        pos: usize,
        trace: &mut MemoryTrace,
    ) -> (bool, u64, u64) {
        let budget = (read.symbols.len() / 50).max(2) as u64;
        let mut comparisons = 0u64;
        let mut mismatches = 0u64;
        for (i, &symbol) in read.symbols.iter().enumerate() {
            trace.read((pos + i) as u64);
            comparisons += 1;
            if genome.codes()[pos + i] != symbol {
                mismatches += 1;
                if mismatches > budget {
                    return (false, comparisons, mismatches);
                }
            }
        }
        (true, comparisons, mismatches)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reads::ReadSampler;

    fn setup() -> (Genome, SortedKmerIndex) {
        let genome = Genome::generate(4_000, 5);
        let index = SortedKmerIndex::build(&genome, 16);
        (genome, index)
    }

    #[test]
    fn index_contains_all_kmers_sorted() {
        let (genome, index) = setup();
        assert_eq!(index.len(), genome.len() - 16 + 1);
        assert!(!index.is_empty());
        assert!(index.entries.windows(2).all(|w| w[0].0 <= w[1].0));
        assert_eq!(index.seed_len(), 16);
    }

    #[test]
    fn exact_reads_map_to_their_true_position() {
        let (genome, index) = setup();
        let sampler = ReadSampler {
            read_len: 64,
            coverage: 2,
            error_rate: 0.0,
            seed: 77,
        };
        for read in sampler.sample(&genome) {
            let mut trace = MemoryTrace::new();
            let outcome = index.map_read(&genome, &read, &mut trace);
            assert!(
                outcome.mapped_positions.contains(&read.true_position),
                "read from {} not mapped",
                read.true_position
            );
            assert!(outcome.comparisons > 0);
            assert!(!trace.is_empty());
        }
    }

    #[test]
    fn lookup_agrees_with_naive_scan() {
        let (genome, index) = setup();
        let sampler = ReadSampler {
            read_len: 32,
            coverage: 1,
            error_rate: 0.0,
            seed: 13,
        };
        for read in sampler.sample(&genome).into_iter().take(20) {
            let mut trace = MemoryTrace::new();
            let outcome = index.map_read(&genome, &read, &mut trace);
            // Naive reference: every position whose window equals the read.
            let naive: Vec<usize> = (0..=genome.len() - read.symbols.len())
                .filter(|&p| &genome.codes()[p..p + read.symbols.len()] == read.symbols.as_slice())
                .collect();
            assert_eq!(outcome.mapped_positions, naive);
        }
    }

    #[test]
    fn erroneous_reads_tolerate_few_mismatches() {
        let (genome, index) = setup();
        let sampler = ReadSampler {
            read_len: 100,
            coverage: 1,
            error_rate: 0.01,
            seed: 21,
        };
        let reads = sampler.sample(&genome);
        let mut mapped = 0usize;
        for read in &reads {
            // Skip reads whose seed itself is corrupted — seed-and-extend
            // cannot find those (a real mapper retries with other seeds).
            if read.error_positions.iter().any(|&i| i < index.seed_len()) {
                continue;
            }
            let mut trace = MemoryTrace::new();
            let outcome = index.map_read(&genome, read, &mut trace);
            if outcome.mapped_positions.contains(&read.true_position) {
                mapped += 1;
            }
        }
        assert!(mapped > 0, "no erroneous reads mapped at all");
    }

    #[test]
    fn probe_addresses_span_the_index_randomly() {
        let (genome, index) = setup();
        let sampler = ReadSampler {
            read_len: 32,
            coverage: 4,
            error_rate: 0.0,
            seed: 31,
        };
        let mut trace = MemoryTrace::new();
        for read in sampler.sample(&genome) {
            let _ = index.map_read(&genome, &read, &mut trace);
        }
        // The index probes must touch a large fraction of the table's
        // cache lines — the locality destruction the paper describes.
        let index_lines_touched = trace
            .accesses()
            .iter()
            .filter(|a| a.address >= genome.len() as u64)
            .map(|a| a.address / 64)
            .collect::<std::collections::HashSet<_>>()
            .len();
        let total_index_lines = (index.len() as u64 * ENTRY_BYTES / 64) as usize;
        assert!(
            index_lines_touched * 4 > total_index_lines,
            "probes touched only {index_lines_touched} of {total_index_lines} lines"
        );
    }

    #[test]
    #[should_panic(expected = "seed length")]
    fn rejects_oversized_seeds() {
        let genome = Genome::generate(100, 0);
        let _ = SortedKmerIndex::build(&genome, 33);
    }
}
