//! Reference-genome generation.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// A DNA nucleotide — a 2-bit symbol.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[repr(u8)]
pub enum Nucleotide {
    /// Adenine.
    A = 0,
    /// Cytosine.
    C = 1,
    /// Guanine.
    G = 2,
    /// Thymine.
    T = 3,
}

impl Nucleotide {
    /// All four symbols — the paper's "each A, C, G, T nucleotides".
    pub const ALL: [Nucleotide; 4] = [Nucleotide::A, Nucleotide::C, Nucleotide::G, Nucleotide::T];

    /// The 2-bit encoding.
    pub fn code(self) -> u8 {
        self as u8
    }

    /// Decodes a 2-bit symbol.
    ///
    /// # Panics
    ///
    /// Panics if `code > 3`.
    pub fn from_code(code: u8) -> Self {
        Self::ALL[code as usize]
    }

    /// The character representation.
    pub fn to_char(self) -> char {
        match self {
            Nucleotide::A => 'A',
            Nucleotide::C => 'C',
            Nucleotide::G => 'G',
            Nucleotide::T => 'T',
        }
    }
}

/// A synthetic reference genome: a seeded uniform nucleotide sequence.
///
/// Real genomes have repeat structure; for the paper's experiment what
/// matters is the *index access pattern*, which uniform sequences
/// reproduce (uniformly distributed k-mer probes — the worst case for
/// locality, matching the paper's cache-hostile framing).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Genome {
    symbols: Vec<u8>,
}

impl Genome {
    /// Generates a genome of `length` nucleotides from `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `length` is zero.
    pub fn generate(length: usize, seed: u64) -> Self {
        assert!(length > 0, "genome length must be non-zero");
        let mut rng = StdRng::seed_from_u64(seed);
        Self {
            symbols: (0..length).map(|_| rng.gen_range(0..4u8)).collect(),
        }
    }

    /// Builds a genome directly from 2-bit codes.
    ///
    /// # Panics
    ///
    /// Panics if any code exceeds 3 or the sequence is empty.
    pub fn from_codes(symbols: Vec<u8>) -> Self {
        assert!(!symbols.is_empty(), "genome must be non-empty");
        assert!(symbols.iter().all(|&s| s < 4), "invalid nucleotide code");
        Self { symbols }
    }

    /// Genome length in nucleotides.
    pub fn len(&self) -> usize {
        self.symbols.len()
    }

    /// Always false — construction rejects empty genomes.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The 2-bit codes.
    pub fn codes(&self) -> &[u8] {
        &self.symbols
    }

    /// The nucleotide at `pos`.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn at(&self, pos: usize) -> Nucleotide {
        Nucleotide::from_code(self.symbols[pos])
    }

    /// Renders a window as characters (diagnostics).
    pub fn to_string_window(&self, start: usize, len: usize) -> String {
        self.symbols[start..start + len]
            .iter()
            .map(|&c| Nucleotide::from_code(c).to_char())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_seeded_and_uniformish() {
        let a = Genome::generate(10_000, 7);
        let b = Genome::generate(10_000, 7);
        assert_eq!(a, b);
        let c = Genome::generate(10_000, 8);
        assert_ne!(a, c);
        // All four symbols appear with roughly equal frequency.
        let mut counts = [0usize; 4];
        for &s in a.codes() {
            counts[s as usize] += 1;
        }
        for &n in &counts {
            assert!((2_000..3_000).contains(&n), "skewed counts {counts:?}");
        }
    }

    #[test]
    fn nucleotide_round_trips() {
        for n in Nucleotide::ALL {
            assert_eq!(Nucleotide::from_code(n.code()), n);
        }
        assert_eq!(Nucleotide::A.to_char(), 'A');
        assert_eq!(Nucleotide::T.to_char(), 'T');
    }

    #[test]
    fn window_rendering() {
        let g = Genome::from_codes(vec![0, 1, 2, 3]);
        assert_eq!(g.to_string_window(0, 4), "ACGT");
        assert_eq!(g.at(2), Nucleotide::G);
        assert_eq!(g.len(), 4);
    }

    #[test]
    #[should_panic(expected = "invalid nucleotide")]
    fn rejects_bad_codes() {
        let _ = Genome::from_codes(vec![0, 5]);
    }
}
