//! Workload generation for the paper's two evaluation applications.
//!
//! **Healthcare / DNA** (Section III.B.1): comparing sequencing reads
//! against a reference genome using "a sorted index of the reference DNA
//! that can be used to identify the location of matches and mismatches".
//! The paper's point is that the sorted index *destroys data locality* —
//! index probes hop randomly through a gigabyte-scale structure, causing
//! the 50% cache-hit ratio Table 1 assumes. This crate implements the
//! real pipeline — [`Genome`] generation, [`ReadSampler`] short-read
//! sampling with errors, a [`SortedKmerIndex`] with binary-search lookup —
//! and every operation emits a [`MemoryTrace`] so `cim-sim`'s cache
//! simulator can *measure* that hit ratio instead of assuming it.
//!
//! **Mathematics** (Section III.B.2): bulk parallel additions —
//! [`AdditionWorkload`] generates the operand streams.
//!
//! [`DnaSpec::paper`] carries the paper-scale constants (3 GB reference,
//! 50× coverage, 100-character reads) and their closed-form operation
//! counts; the generators run at any scaled-down size with the same
//! access-pattern shape.
//!
//! Both applications implement the [`Workload`] trait — deterministic
//! generation, per-item execution by a `cim-sim` backend condensed into
//! an [`ExecutionDigest`], and independent [`Workload::verify`]
//! checking — so drivers handle them uniformly.

mod additions;
mod dna;
mod genome;
mod index;
mod reads;
mod trace;
mod workload;

pub use additions::{AdditionShard, AdditionWorkload, Shardable};
pub use dna::{DnaSpec, DnaWorkload};
pub use genome::{Genome, Nucleotide};
pub use index::{LookupOutcome, SortedKmerIndex};
pub use reads::{ReadSampler, ShortRead};
pub use trace::{Access, MemoryTrace};
pub use workload::{ExecutionDigest, ProjectionKind, Workload, WorkloadError};
