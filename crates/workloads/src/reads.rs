//! Short-read sampling with sequencing errors.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::genome::Genome;

/// One sequencing read: a window of the genome with possible errors.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShortRead {
    /// The (possibly corrupted) 2-bit symbols.
    pub symbols: Vec<u8>,
    /// The true position the read was sampled from (ground truth for
    /// mapping validation).
    pub true_position: usize,
    /// Indices within the read where substitution errors were injected.
    pub error_positions: Vec<usize>,
}

/// Samples short reads at a given coverage, mimicking a sequencer.
///
/// Table 1: "the DNA reference sequence must be covered 50 times by short
/// reads. The length of the short reads are assumed to be 100
/// characters." Coverage `c` over a reference of length `L` with reads of
/// length `r` yields `c·L/r` reads — the paper's
/// `no_short_reads = coverage · 3 · giga / short_read_len`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ReadSampler {
    /// Read length in characters (paper: 100).
    pub read_len: usize,
    /// Coverage factor (paper: 50).
    pub coverage: u32,
    /// Per-character substitution probability.
    pub error_rate: f64,
    /// RNG seed.
    pub seed: u64,
}

impl ReadSampler {
    /// The paper's sampling parameters (coverage 50, length 100) with a
    /// realistic 1% substitution rate.
    pub fn paper_defaults(seed: u64) -> Self {
        Self {
            read_len: 100,
            coverage: 50,
            error_rate: 0.01,
            seed,
        }
    }

    /// Number of reads needed for the configured coverage of `genome`.
    pub fn read_count(&self, genome: &Genome) -> usize {
        (self.coverage as usize * genome.len()).div_ceil(self.read_len)
    }

    /// Samples all reads for the configured coverage.
    ///
    /// # Panics
    ///
    /// Panics if the genome is shorter than one read.
    pub fn sample(&self, genome: &Genome) -> Vec<ShortRead> {
        assert!(
            genome.len() >= self.read_len,
            "genome shorter than read length"
        );
        let mut rng = StdRng::seed_from_u64(self.seed);
        let n = self.read_count(genome);
        (0..n).map(|_| self.sample_one(genome, &mut rng)).collect()
    }

    fn sample_one(&self, genome: &Genome, rng: &mut StdRng) -> ShortRead {
        let start = rng.gen_range(0..=genome.len() - self.read_len);
        let mut symbols: Vec<u8> = genome.codes()[start..start + self.read_len].to_vec();
        let mut error_positions = Vec::new();
        for (i, s) in symbols.iter_mut().enumerate() {
            if rng.gen_bool(self.error_rate) {
                let substitute = (*s + rng.gen_range(1..4u8)) % 4;
                *s = substitute;
                error_positions.push(i);
            }
        }
        ShortRead {
            symbols,
            true_position: start,
            error_positions,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn genome() -> Genome {
        Genome::generate(5_000, 11)
    }

    #[test]
    fn read_count_follows_coverage_formula() {
        let s = ReadSampler {
            read_len: 100,
            coverage: 50,
            error_rate: 0.0,
            seed: 0,
        };
        // coverage · L / r = 50 · 5000 / 100 = 2500.
        assert_eq!(s.read_count(&genome()), 2_500);
    }

    #[test]
    fn error_free_reads_match_reference_exactly() {
        let s = ReadSampler {
            read_len: 50,
            coverage: 2,
            error_rate: 0.0,
            seed: 3,
        };
        let g = genome();
        for read in s.sample(&g) {
            assert_eq!(
                read.symbols,
                g.codes()[read.true_position..read.true_position + 50]
            );
            assert!(read.error_positions.is_empty());
        }
    }

    #[test]
    fn errors_are_recorded_and_substituted() {
        let s = ReadSampler {
            read_len: 100,
            coverage: 5,
            error_rate: 0.05,
            seed: 9,
        };
        let g = genome();
        let reads = s.sample(&g);
        let total_errors: usize = reads.iter().map(|r| r.error_positions.len()).sum();
        let total_chars: usize = reads.len() * 100;
        let rate = total_errors as f64 / total_chars as f64;
        assert!((0.03..0.07).contains(&rate), "error rate {rate}");
        // Every recorded error really differs from the reference.
        for read in &reads {
            for &i in &read.error_positions {
                assert_ne!(read.symbols[i], g.codes()[read.true_position + i]);
            }
        }
    }

    #[test]
    fn sampling_is_reproducible() {
        let s = ReadSampler::paper_defaults(42);
        let g = genome();
        assert_eq!(s.sample(&g), s.sample(&g));
    }

    #[test]
    #[should_panic(expected = "shorter than read length")]
    fn rejects_tiny_genomes() {
        let s = ReadSampler::paper_defaults(0);
        let g = Genome::generate(10, 0);
        let _ = s.sample(&g);
    }
}
