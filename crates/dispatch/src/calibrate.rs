//! Online calibration: certified predictions versus observed ledgers,
//! reconciled in exact count-space.
//!
//! After every dispatched run the calibrator compares the estimate's
//! predicted [`CostLedger`] against the ledger the run actually
//! charged, and (in [`CalibrationMode::Online`]) refines one dyadic
//! scale factor per component × phase cell. The refinement never
//! leaves the conservation contract: factors are quantised through
//! [`ScaleTable::set`] (dyadic mantissas), applied to prices via
//! [`ScaleTable::rescale`] (which re-quantises through
//! `UnitCosts::set`), so a calibrated prediction is still *exact
//! counts × dyadic prices* — the same currency every ledger in the
//! workspace conserves bit-for-bit.
//!
//! [`CalibrationMode::Frozen`] records prediction errors without
//! touching the scales, which is what reproducible benches use: the
//! route taken on run *n* can never depend on the runs before it.

use cim_sim::CostEstimate;
use cim_units::{Component, CostLedger, Phase, ScaleTable};
use serde::{Deserialize, Serialize};

use crate::trace::Route;

/// Whether observations refine the scale tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CalibrationMode {
    /// Scales never change; errors are still recorded. Use for
    /// reproducible benches, where decision `n` must not depend on
    /// runs `0..n`.
    Frozen,
    /// Each observation refits the observed machine's per-cell scale
    /// factors (dyadically quantised).
    Online,
}

/// Tracks per-machine scale tables and the prediction-error history.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Calibrator {
    mode: CalibrationMode,
    cim: ScaleTable,
    host: ScaleTable,
    errors: Vec<f64>,
}

/// Relative error between a predicted and an observed non-negative
/// quantity: zero when both are zero, one when only the observation is
/// zero (the prediction invented cost from nothing).
fn relative_error(predicted: f64, observed: f64) -> f64 {
    if observed > 0.0 {
        (predicted - observed).abs() / observed
    } else if predicted > 0.0 {
        1.0
    } else {
        0.0
    }
}

impl Calibrator {
    /// A calibrator with identity scales in the given mode.
    pub fn new(mode: CalibrationMode) -> Self {
        Self {
            mode,
            cim: ScaleTable::identity(),
            host: ScaleTable::identity(),
            errors: Vec::new(),
        }
    }

    /// A frozen calibrator (identity scales, never refined).
    pub fn frozen() -> Self {
        Self::new(CalibrationMode::Frozen)
    }

    /// An online calibrator.
    pub fn online() -> Self {
        Self::new(CalibrationMode::Online)
    }

    /// The mode observations run in.
    pub fn mode(&self) -> CalibrationMode {
        self.mode
    }

    /// Current scales for the CIM machine's prices.
    pub fn cim_scales(&self) -> &ScaleTable {
        &self.cim
    }

    /// Current scales for the host machine's prices.
    pub fn host_scales(&self) -> &ScaleTable {
        &self.host
    }

    /// Relative prediction errors, one per observation, in order.
    pub fn errors(&self) -> &[f64] {
        &self.errors
    }

    /// Reconciles one run: scores the estimate's *calibrated* ledger
    /// against the observed one, records the relative error (the worse
    /// of the energy and time axes), and — in online mode — refits the
    /// observed machine's scale factors cell by cell. Returns the
    /// recorded error.
    ///
    /// The refit is exact count-space arithmetic: for every cell the
    /// estimate counted, the new factor is the ratio of observed to
    /// *base-priced* cost (so factors never compound), quantised
    /// dyadically by [`ScaleTable::set`]. Cells the estimate never
    /// counted — or whose base price is zero — keep their factor:
    /// there is no evidence to refit them on.
    pub fn observe(&mut self, route: Route, estimate: &CostEstimate, observed: &CostLedger) -> f64 {
        let scales = match route {
            Route::Cim => &self.cim,
            Route::Host => &self.host,
        };
        let predicted = scales.rescale(&estimate.prices).evaluate(&estimate.counts);
        let error = relative_error(
            predicted.total_energy().get(),
            observed.total_energy().get(),
        )
        .max(relative_error(
            predicted.total_time().get(),
            observed.total_time().get(),
        ));
        self.errors.push(error);
        if self.mode == CalibrationMode::Online {
            let scales = match route {
                Route::Cim => &mut self.cim,
                Route::Host => &mut self.host,
            };
            for component in Component::ALL {
                for phase in Phase::ALL {
                    let count = estimate.counts.count(component, phase);
                    if count == 0 {
                        continue;
                    }
                    let seen = observed.entry(component, phase);
                    let base_energy =
                        estimate.prices.unit_energy(component, phase).get() * count as f64;
                    let base_time =
                        estimate.prices.unit_time(component, phase).get() * count as f64;
                    let refit = |base: f64, seen: f64, keep: f64| {
                        if base > 0.0 && seen > 0.0 {
                            seen / base
                        } else {
                            keep
                        }
                    };
                    let energy_factor = refit(
                        base_energy,
                        seen.energy.get(),
                        scales.energy_factor(component, phase),
                    );
                    let time_factor = refit(
                        base_time,
                        seen.time.get(),
                        scales.time_factor(component, phase),
                    );
                    scales.set(component, phase, energy_factor, time_factor);
                }
            }
        }
        error
    }
}

impl Default for Calibrator {
    fn default() -> Self {
        Self::online()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cim_units::{CountLedger, Energy, Time, UnitCosts};

    fn estimate(count: u64, energy_fj: f64, time_ps: f64) -> CostEstimate {
        let mut counts = CountLedger::new();
        counts.charge(Component::ImplyStep, Phase::Map, count);
        let mut prices = UnitCosts::new();
        prices.set(
            Component::ImplyStep,
            Phase::Map,
            Energy::from_femto_joules(energy_fj),
            Time::from_pico_seconds(time_ps),
        );
        CostEstimate {
            machine: "cim",
            counts,
            prices,
            certified: true,
        }
    }

    /// An observed ledger that charges 1.5x the estimate's energy and
    /// 0.5x its time.
    fn skewed_observation(est: &CostEstimate) -> CostLedger {
        let base = est.ledger();
        let cell = base.entry(Component::ImplyStep, Phase::Map);
        let mut observed = CostLedger::new();
        observed.charge(
            Component::ImplyStep,
            Phase::Map,
            Energy::new(cell.energy.get() * 1.5),
            Time::new(cell.time.get() * 0.5),
            cell.count,
        );
        observed
    }

    #[test]
    fn online_calibration_shrinks_error_to_quantisation() {
        let est = estimate(1000, 45.0, 0.27);
        let observed = skewed_observation(&est);
        let mut calibrator = Calibrator::online();
        let first = calibrator.observe(Route::Cim, &est, &observed);
        let second = calibrator.observe(Route::Cim, &est, &observed);
        // The time axis dominates: observed is half the prediction, so
        // |p - o| / o = 1.0 (the energy axis alone would read 1/3).
        assert!((first - 1.0).abs() < 1e-12, "first error {first}");
        // One refit lands within dyadic quantisation of the truth.
        assert!(second < 1e-6, "second error {second}");
        assert!(second <= first);
        assert_eq!(calibrator.errors().len(), 2);
        assert!(!calibrator.cim_scales().is_identity());
        assert!(calibrator.host_scales().is_identity());
    }

    #[test]
    fn frozen_calibration_records_but_never_refits() {
        let est = estimate(1000, 45.0, 0.27);
        let observed = skewed_observation(&est);
        let mut calibrator = Calibrator::frozen();
        let first = calibrator.observe(Route::Cim, &est, &observed);
        let second = calibrator.observe(Route::Cim, &est, &observed);
        assert_eq!(first, second, "frozen errors must not drift");
        assert!(calibrator.cim_scales().is_identity());
        assert_eq!(calibrator.mode(), CalibrationMode::Frozen);
    }

    #[test]
    fn perfect_predictions_have_zero_error() {
        let est = estimate(64, 45.0, 0.27);
        let observed = est.ledger();
        let mut calibrator = Calibrator::online();
        assert_eq!(calibrator.observe(Route::Host, &est, &observed), 0.0);
        // Refitting on a perfect observation keeps factors at identity
        // up to dyadic quantisation (1.0 is exactly dyadic).
        assert!(calibrator.host_scales().max_deviation() < 1e-7);
    }
}
