//! Online calibration: certified predictions versus observed ledgers,
//! reconciled in exact count-space.
//!
//! After every dispatched run the calibrator compares the estimate's
//! predicted [`CostLedger`] against the ledger the run actually
//! charged, and (in [`CalibrationMode::Online`]) refines one dyadic
//! scale factor per component × phase cell. The refinement never
//! leaves the conservation contract: factors are quantised through
//! [`ScaleTable::set`] (dyadic mantissas), applied to prices via
//! [`ScaleTable::rescale`] (which re-quantises through
//! `UnitCosts::set`), so a calibrated prediction is still *exact
//! counts × dyadic prices* — the same currency every ledger in the
//! workspace conserves bit-for-bit.
//!
//! [`CalibrationMode::Frozen`] records prediction errors without
//! touching the scales, which is what reproducible benches use: the
//! route taken on run *n* can never depend on the runs before it.

use cim_sim::CostEstimate;
use cim_units::{Component, CostLedger, Phase, ScaleTable};
use serde::{Deserialize, Serialize};

use crate::trace::Route;

/// Whether observations refine the scale tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CalibrationMode {
    /// Scales never change; errors are still recorded. Use for
    /// reproducible benches, where decision `n` must not depend on
    /// runs `0..n`.
    Frozen,
    /// Each observation refits the observed machine's per-cell scale
    /// factors (dyadically quantised).
    Online,
}

/// Tracks per-machine scale tables and the prediction-error history.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Calibrator {
    mode: CalibrationMode,
    cim: ScaleTable,
    host: ScaleTable,
    errors: Vec<f64>,
}

/// Relative error between a predicted and an observed non-negative
/// quantity: zero when both are zero, one when only the observation is
/// zero (the prediction invented cost from nothing).
fn relative_error(predicted: f64, observed: f64) -> f64 {
    if observed > 0.0 {
        (predicted - observed).abs() / observed
    } else if predicted > 0.0 {
        1.0
    } else {
        0.0
    }
}

impl Calibrator {
    /// A calibrator with identity scales in the given mode.
    pub fn new(mode: CalibrationMode) -> Self {
        Self {
            mode,
            cim: ScaleTable::identity(),
            host: ScaleTable::identity(),
            errors: Vec::new(),
        }
    }

    /// A frozen calibrator (identity scales, never refined).
    pub fn frozen() -> Self {
        Self::new(CalibrationMode::Frozen)
    }

    /// An online calibrator.
    pub fn online() -> Self {
        Self::new(CalibrationMode::Online)
    }

    /// The mode observations run in.
    pub fn mode(&self) -> CalibrationMode {
        self.mode
    }

    /// Current scales for the CIM machine's prices.
    pub fn cim_scales(&self) -> &ScaleTable {
        &self.cim
    }

    /// Current scales for the host machine's prices.
    pub fn host_scales(&self) -> &ScaleTable {
        &self.host
    }

    /// Relative prediction errors, one per observation, in order.
    pub fn errors(&self) -> &[f64] {
        &self.errors
    }

    /// Reconciles one run: scores the estimate's *calibrated* ledger
    /// against the observed one, records the relative error (the worse
    /// of the energy and time axes), and — in online mode — refits the
    /// observed machine's scale factors cell by cell. Returns the
    /// recorded error.
    ///
    /// The refit is exact count-space arithmetic: for every cell the
    /// estimate counted, the new factor is the ratio of observed to
    /// *base-priced* cost (so factors never compound), quantised
    /// dyadically by [`ScaleTable::set`]. Cells the estimate never
    /// counted — or whose base price is zero — keep their factor:
    /// there is no evidence to refit them on.
    pub fn observe(&mut self, route: Route, estimate: &CostEstimate, observed: &CostLedger) -> f64 {
        let scales = match route {
            Route::Cim => &self.cim,
            Route::Host => &self.host,
        };
        let predicted = scales.rescale(&estimate.prices).evaluate(&estimate.counts);
        let error = relative_error(
            predicted.total_energy().get(),
            observed.total_energy().get(),
        )
        .max(relative_error(
            predicted.total_time().get(),
            observed.total_time().get(),
        ));
        self.errors.push(error);
        if self.mode == CalibrationMode::Online {
            let scales = match route {
                Route::Cim => &mut self.cim,
                Route::Host => &mut self.host,
            };
            for component in Component::ALL {
                for phase in Phase::ALL {
                    let count = estimate.counts.count(component, phase);
                    if count == 0 {
                        continue;
                    }
                    let seen = observed.entry(component, phase);
                    let base_energy =
                        estimate.prices.unit_energy(component, phase).get() * count as f64;
                    let base_time =
                        estimate.prices.unit_time(component, phase).get() * count as f64;
                    let refit = |base: f64, seen: f64, keep: f64| {
                        if base > 0.0 && seen > 0.0 {
                            seen / base
                        } else {
                            keep
                        }
                    };
                    let energy_factor = refit(
                        base_energy,
                        seen.energy.get(),
                        scales.energy_factor(component, phase),
                    );
                    let time_factor = refit(
                        base_time,
                        seen.time.get(),
                        scales.time_factor(component, phase),
                    );
                    scales.set(component, phase, energy_factor, time_factor);
                }
            }
        }
        error
    }
}

/// Versioned header of the calibrator persistence format.
const PERSIST_HEADER: &str = "cim-calibrator/1";

impl Calibrator {
    /// Serialises the calibrator (mode plus both scale tables) to a
    /// versioned text format whose factors round-trip *exactly*: every
    /// factor is written as the hex encoding of its `f64` bits, one
    /// `machine component phase energy time` line per non-identity
    /// cell. The error history is session-local and not persisted.
    pub fn save_string(&self) -> String {
        let mode = match self.mode {
            CalibrationMode::Frozen => "frozen",
            CalibrationMode::Online => "online",
        };
        let mut out = format!("{PERSIST_HEADER}\nmode {mode}\n");
        for (machine, scales) in [("cim", &self.cim), ("host", &self.host)] {
            for component in Component::ALL {
                for phase in Phase::ALL {
                    let energy = scales.energy_factor(component, phase);
                    let time = scales.time_factor(component, phase);
                    if energy == 1.0 && time == 1.0 {
                        continue;
                    }
                    out.push_str(&format!(
                        "{machine} {} {} {:016x} {:016x}\n",
                        component.label(),
                        phase.label(),
                        energy.to_bits(),
                        time.to_bits()
                    ));
                }
            }
        }
        out
    }

    /// Parses a calibrator previously written by
    /// [`save_string`](Self::save_string). Factors load through
    /// [`ScaleTable::set`], which is the identity on the already-dyadic
    /// saved values — the round-trip is bit-exact. The error history
    /// starts empty.
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed line, or of a
    /// missing/unknown header, mode, machine, component, or phase.
    pub fn load_string(text: &str) -> Result<Self, String> {
        let mut lines = text.lines();
        let header = lines.next().ok_or("empty calibrator file")?;
        if header.trim() != PERSIST_HEADER {
            return Err(format!(
                "unknown calibrator header `{header}` (expected {PERSIST_HEADER})"
            ));
        }
        let mode_line = lines.next().ok_or("missing mode line")?;
        let mode = match mode_line.trim() {
            "mode frozen" => CalibrationMode::Frozen,
            "mode online" => CalibrationMode::Online,
            other => return Err(format!("unknown mode line `{other}`")),
        };
        let mut calibrator = Self::new(mode);
        for line in lines {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let fields: Vec<&str> = line.split_whitespace().collect();
            let [machine, component_label, phase_label, energy_hex, time_hex] = fields[..] else {
                return Err(format!("malformed calibrator line `{line}`"));
            };
            let component = Component::ALL
                .into_iter()
                .find(|c| c.label() == component_label)
                .ok_or_else(|| format!("unknown component `{component_label}`"))?;
            let phase = Phase::ALL
                .into_iter()
                .find(|p| p.label() == phase_label)
                .ok_or_else(|| format!("unknown phase `{phase_label}`"))?;
            let parse_bits = |hex: &str| {
                u64::from_str_radix(hex, 16)
                    .map(f64::from_bits)
                    .map_err(|_| format!("malformed factor `{hex}` in `{line}`"))
            };
            let energy = parse_bits(energy_hex)?;
            let time = parse_bits(time_hex)?;
            let scales = match machine {
                "cim" => &mut calibrator.cim,
                "host" => &mut calibrator.host,
                other => return Err(format!("unknown machine `{other}`")),
            };
            scales.set(component, phase, energy, time);
        }
        Ok(calibrator)
    }

    /// Writes [`save_string`](Self::save_string) to `path`.
    ///
    /// # Errors
    ///
    /// Propagates the underlying I/O error.
    pub fn save(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.save_string())
    }

    /// Reads a calibrator from `path` via
    /// [`load_string`](Self::load_string).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors; parse failures surface as
    /// [`std::io::ErrorKind::InvalidData`].
    pub fn load(path: &std::path::Path) -> std::io::Result<Self> {
        let text = std::fs::read_to_string(path)?;
        Self::load_string(&text)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
    }
}

impl Default for Calibrator {
    fn default() -> Self {
        Self::online()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cim_units::{CountLedger, Energy, Time, UnitCosts};

    fn estimate(count: u64, energy_fj: f64, time_ps: f64) -> CostEstimate {
        let mut counts = CountLedger::new();
        counts.charge(Component::ImplyStep, Phase::Map, count);
        let mut prices = UnitCosts::new();
        prices.set(
            Component::ImplyStep,
            Phase::Map,
            Energy::from_femto_joules(energy_fj),
            Time::from_pico_seconds(time_ps),
        );
        CostEstimate {
            machine: "cim",
            counts,
            prices,
            certified: true,
        }
    }

    /// An observed ledger that charges 1.5x the estimate's energy and
    /// 0.5x its time.
    fn skewed_observation(est: &CostEstimate) -> CostLedger {
        let base = est.ledger();
        let cell = base.entry(Component::ImplyStep, Phase::Map);
        let mut observed = CostLedger::new();
        observed.charge(
            Component::ImplyStep,
            Phase::Map,
            Energy::new(cell.energy.get() * 1.5),
            Time::new(cell.time.get() * 0.5),
            cell.count,
        );
        observed
    }

    #[test]
    fn online_calibration_shrinks_error_to_quantisation() {
        let est = estimate(1000, 45.0, 0.27);
        let observed = skewed_observation(&est);
        let mut calibrator = Calibrator::online();
        let first = calibrator.observe(Route::Cim, &est, &observed);
        let second = calibrator.observe(Route::Cim, &est, &observed);
        // The time axis dominates: observed is half the prediction, so
        // |p - o| / o = 1.0 (the energy axis alone would read 1/3).
        assert!((first - 1.0).abs() < 1e-12, "first error {first}");
        // One refit lands within dyadic quantisation of the truth.
        assert!(second < 1e-6, "second error {second}");
        assert!(second <= first);
        assert_eq!(calibrator.errors().len(), 2);
        assert!(!calibrator.cim_scales().is_identity());
        assert!(calibrator.host_scales().is_identity());
    }

    #[test]
    fn frozen_calibration_records_but_never_refits() {
        let est = estimate(1000, 45.0, 0.27);
        let observed = skewed_observation(&est);
        let mut calibrator = Calibrator::frozen();
        let first = calibrator.observe(Route::Cim, &est, &observed);
        let second = calibrator.observe(Route::Cim, &est, &observed);
        assert_eq!(first, second, "frozen errors must not drift");
        assert!(calibrator.cim_scales().is_identity());
        assert_eq!(calibrator.mode(), CalibrationMode::Frozen);
    }

    #[test]
    fn calibrator_round_trips_exactly_through_the_text_format() {
        // Drive an online calibrator away from identity with a skewed
        // observation, then prove the persisted factors reload
        // bit-for-bit.
        let est = estimate(1000, 45.0, 0.27);
        let observed = skewed_observation(&est);
        let mut calibrator = Calibrator::online();
        calibrator.observe(Route::Cim, &est, &observed);
        assert!(!calibrator.cim_scales().is_identity());

        let text = calibrator.save_string();
        assert!(text.starts_with("cim-calibrator/1\nmode online\n"));
        let loaded = Calibrator::load_string(&text).expect("round-trip parses");
        assert_eq!(loaded.mode(), calibrator.mode());
        for component in Component::ALL {
            for phase in Phase::ALL {
                for (ours, theirs) in [
                    (calibrator.cim_scales(), loaded.cim_scales()),
                    (calibrator.host_scales(), loaded.host_scales()),
                ] {
                    assert_eq!(
                        ours.energy_factor(component, phase).to_bits(),
                        theirs.energy_factor(component, phase).to_bits(),
                        "energy factor drifted at {component:?}/{phase:?}"
                    );
                    assert_eq!(
                        ours.time_factor(component, phase).to_bits(),
                        theirs.time_factor(component, phase).to_bits(),
                        "time factor drifted at {component:?}/{phase:?}"
                    );
                }
            }
        }
        // A second generation survives unchanged too: saved factors are
        // already dyadic, so `ScaleTable::set` is the identity on them.
        assert_eq!(loaded.save_string(), text);
    }

    #[test]
    fn identity_calibrators_persist_compactly() {
        let text = Calibrator::frozen().save_string();
        assert_eq!(text, "cim-calibrator/1\nmode frozen\n");
        let loaded = Calibrator::load_string(&text).expect("parses");
        assert!(loaded.cim_scales().is_identity());
        assert!(loaded.host_scales().is_identity());
        assert_eq!(loaded.mode(), CalibrationMode::Frozen);
    }

    #[test]
    fn malformed_calibrator_files_are_rejected_with_evidence() {
        for (text, needle) in [
            ("", "empty"),
            ("cim-calibrator/0\nmode frozen\n", "unknown calibrator header"),
            ("cim-calibrator/1\n", "missing mode"),
            ("cim-calibrator/1\nmode warm\n", "unknown mode"),
            (
                "cim-calibrator/1\nmode frozen\ncim imply_step\n",
                "malformed calibrator line",
            ),
            (
                "cim-calibrator/1\nmode frozen\ngpu imply_step map 3ff0000000000000 3ff0000000000000\n",
                "unknown machine",
            ),
            (
                "cim-calibrator/1\nmode frozen\ncim warp_shuffle map 3ff0000000000000 3ff0000000000000\n",
                "unknown component",
            ),
            (
                "cim-calibrator/1\nmode frozen\ncim imply_step zap 3ff0000000000000 3ff0000000000000\n",
                "unknown phase",
            ),
            (
                "cim-calibrator/1\nmode frozen\ncim imply_step map nothex 3ff0000000000000\n",
                "malformed factor",
            ),
        ] {
            let err = Calibrator::load_string(text).expect_err(needle);
            assert!(err.contains(needle), "`{err}` missing `{needle}`");
        }
    }

    #[test]
    fn calibrator_save_load_round_trips_through_a_file() {
        let est = estimate(512, 45.0, 0.27);
        let observed = skewed_observation(&est);
        let mut calibrator = Calibrator::online();
        calibrator.observe(Route::Cim, &est, &observed);
        let dir = std::env::temp_dir();
        let path = dir.join("cim-calibrator-roundtrip-test.txt");
        calibrator.save(&path).expect("save");
        let loaded = Calibrator::load(&path).expect("load");
        assert_eq!(loaded.save_string(), calibrator.save_string());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn perfect_predictions_have_zero_error() {
        let est = estimate(64, 45.0, 0.27);
        let observed = est.ledger();
        let mut calibrator = Calibrator::online();
        assert_eq!(calibrator.observe(Route::Host, &est, &observed), 0.0);
        // Refitting on a perfect observation keeps factors at identity
        // up to dyadic quantisation (1.0 is exactly dyadic).
        assert!(calibrator.host_scales().max_deviation() < 1e-7);
    }
}
