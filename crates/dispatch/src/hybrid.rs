//! The hybrid executor: one `ExecutionBackend` wrapping both machines,
//! routing each workload to whichever one certified cost prefers.
//!
//! Routing is a pure function of the two [`CostEstimate`]s, the
//! [`DispatchObjective`], and the calibrator's current scale tables —
//! never of thread counts, wall clocks, or prior runs (in frozen
//! mode). Estimates are count-space certificates and run outcomes are
//! bit-identical at any thread count (the `cim-sim` batch contract),
//! so the recorded [`DispatchTrace`] is too.

use cim_sim::{CostEstimate, ExecutionBackend, RunOutcome, SimError};
use cim_units::{CostLedger, DispatchObjective};
use cim_workloads::Workload;
use serde::{Deserialize, Serialize};

use cim_arch::RunReport;

use crate::calibrate::Calibrator;
use crate::trace::{DispatchDecision, DispatchTrace, Route};

/// Routes workloads across a CIM backend and a conventional backend by
/// certified cost under one objective.
///
/// The two type parameters are the wrapped machines; the struct
/// implements [`ExecutionBackend<W>`] for every workload type both
/// machines implement it for, so a `HybridExecutor<CimExecutor,
/// ConventionalExecutor>` slots in anywhere either machine does.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HybridExecutor<C, H> {
    /// The computation-in-memory machine.
    pub cim: C,
    /// The conventional machine.
    pub host: H,
    objective: DispatchObjective,
    calibrator: Calibrator,
    trace: DispatchTrace,
}

impl<C, H> HybridExecutor<C, H> {
    /// Machine label used in errors and reports.
    pub const MACHINE: &'static str = "hybrid";

    /// A hybrid over the two machines with an online calibrator.
    pub fn new(cim: C, host: H, objective: DispatchObjective) -> Self {
        Self::with_calibrator(cim, host, objective, Calibrator::online())
    }

    /// A hybrid with a frozen calibrator: decisions are reproducible
    /// run-for-run because no observation ever moves the scales.
    pub fn frozen(cim: C, host: H, objective: DispatchObjective) -> Self {
        Self::with_calibrator(cim, host, objective, Calibrator::frozen())
    }

    /// A hybrid with an explicit calibrator (e.g. one carried over
    /// from a previous session).
    pub fn with_calibrator(
        cim: C,
        host: H,
        objective: DispatchObjective,
        calibrator: Calibrator,
    ) -> Self {
        Self {
            cim,
            host,
            objective,
            calibrator,
            trace: DispatchTrace::new(),
        }
    }

    /// The objective decisions are scored under.
    pub fn objective(&self) -> DispatchObjective {
        self.objective
    }

    /// The calibrator (scales and error history).
    pub fn calibrator(&self) -> &Calibrator {
        &self.calibrator
    }

    /// Every decision made through [`dispatch`](Self::dispatch), in
    /// order.
    pub fn trace(&self) -> &DispatchTrace {
        &self.trace
    }

    /// Both machines' calibrated predictions and the route they imply.
    /// Ties go to the CIM machine (the architecture under evaluation).
    fn choose<W>(&self, workload: &W) -> (Route, CostEstimate, CostEstimate)
    where
        W: Workload,
        C: ExecutionBackend<W>,
        H: ExecutionBackend<W>,
    {
        let cim_estimate = self.cim.estimate(workload);
        let host_estimate = self.host.estimate(workload);
        let cim_score = cim_estimate.calibrated_score(self.objective, self.calibrator.cim_scales());
        let host_score =
            host_estimate.calibrated_score(self.objective, self.calibrator.host_scales());
        let route = if cim_score <= host_score {
            Route::Cim
        } else {
            Route::Host
        };
        (route, cim_estimate, host_estimate)
    }

    /// Routes and runs one workload, records the decision in the
    /// [`DispatchTrace`], and feeds the observed ledger back to the
    /// calibrator. This is the stateful front door;
    /// [`ExecutionBackend::run`] routes identically but records
    /// nothing (it takes `&self`).
    pub fn dispatch<W>(&mut self, workload: &W) -> Result<RunOutcome, SimError>
    where
        W: Workload,
        C: ExecutionBackend<W>,
        H: ExecutionBackend<W>,
    {
        let (route, cim_estimate, host_estimate) = self.choose(workload);
        let cim_score = cim_estimate.calibrated_score(self.objective, self.calibrator.cim_scales());
        let host_score =
            host_estimate.calibrated_score(self.objective, self.calibrator.host_scales());
        let outcome = match route {
            Route::Cim => self.cim.run(workload)?,
            Route::Host => self.host.run(workload)?,
        };
        let observed_score = self
            .objective
            .score(outcome.ledger.total_energy(), outcome.ledger.total_time());
        // With perfect foresight of its own run, would the decision
        // have flipped? The passed-over machine was never run, so its
        // calibrated prediction is the counterfactual.
        let (chosen_estimate, loser_score) = match route {
            Route::Cim => (&cim_estimate, host_score),
            Route::Host => (&host_estimate, cim_score),
        };
        let mispredicted = observed_score > loser_score;
        self.calibrator
            .observe(route, chosen_estimate, &outcome.ledger);
        self.trace.push(DispatchDecision {
            workload: workload.name(),
            route,
            objective: self.objective,
            cim_score,
            host_score,
            observed_score,
            mispredicted,
        });
        Ok(outcome)
    }
}

impl<W, C, H> ExecutionBackend<W> for HybridExecutor<C, H>
where
    W: Workload,
    C: ExecutionBackend<W>,
    H: ExecutionBackend<W>,
{
    fn machine(&self) -> &'static str {
        Self::MACHINE
    }

    /// Routes by calibrated certified cost and runs the chosen
    /// machine. Pure in `(self, workload)`: no trace is recorded and
    /// no calibration happens (use [`HybridExecutor::dispatch`] for
    /// the stateful path).
    fn run(&self, workload: &W) -> Result<RunOutcome, SimError> {
        match self.choose(workload).0 {
            Route::Cim => self.cim.run(workload),
            Route::Host => self.host.run(workload),
        }
    }

    fn project_attributed(&self, workload: &W, hit_ratio: f64) -> (RunReport, CostLedger) {
        match self.choose(workload).0 {
            Route::Cim => self.cim.project_attributed(workload, hit_ratio),
            Route::Host => self.host.project_attributed(workload, hit_ratio),
        }
    }

    /// The chosen machine's estimate — the prediction dispatch would
    /// act on, certified by that machine's own counts and prices.
    fn estimate(&self, workload: &W) -> CostEstimate {
        let (route, cim_estimate, host_estimate) = self.choose(workload);
        match route {
            Route::Cim => cim_estimate,
            Route::Host => host_estimate,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cim_sim::{BatchPolicy, CimExecutor, ConventionalExecutor};
    use cim_workloads::{AdditionWorkload, DnaWorkload};

    fn hybrid(threads: usize) -> HybridExecutor<CimExecutor, ConventionalExecutor> {
        let policy = BatchPolicy::with_threads(threads);
        HybridExecutor::frozen(
            CimExecutor::with_batch(policy),
            ConventionalExecutor::with_batch(policy),
            DispatchObjective::Energy,
        )
    }

    #[test]
    fn dispatch_routes_run_and_records() {
        let mut executor = hybrid(1);
        let dna = DnaWorkload::scaled(1 << 12, 64);
        let adds = AdditionWorkload::scaled(1 << 12, 7);
        let first = executor.dispatch(&dna).expect("dna runs");
        let second = executor.dispatch(&adds).expect("adds run");
        assert_eq!(executor.trace().len(), 2);
        let trace = executor.trace();
        // The route taken is the machine whose outcome we got.
        for (decision, outcome) in trace.decisions.iter().zip([&first, &second]) {
            let expected = match decision.route {
                Route::Cim => CimExecutor::MACHINE,
                Route::Host => ConventionalExecutor::MACHINE,
            };
            assert_eq!(outcome.machine, expected);
            assert!(decision.cim_score.is_finite() && decision.host_score.is_finite());
        }
        // On energy, in-memory DNA comparison is the paper's headline
        // win: the crossbar must get the mapping workload.
        assert_eq!(trace.decisions[0].route, Route::Cim);
        assert_eq!(executor.calibrator().errors().len(), 2);
    }

    #[test]
    fn hybrid_run_digest_equals_the_chosen_machine_solo() {
        let executor = hybrid(1);
        let dna = DnaWorkload::scaled(1 << 12, 64);
        let hybrid_outcome = executor.run(&dna).expect("hybrid runs");
        let solo = match executor.choose(&dna).0 {
            Route::Cim => executor.cim.run(&dna),
            Route::Host => executor.host.run(&dna),
        }
        .expect("solo runs");
        assert_eq!(hybrid_outcome, solo);
        assert_eq!(
            ExecutionBackend::<DnaWorkload>::machine(&executor),
            "hybrid"
        );
    }

    #[test]
    fn decisions_are_bit_identical_across_thread_counts() {
        let dna = DnaWorkload::scaled(1 << 12, 64);
        let adds = AdditionWorkload::scaled(1 << 13, 7);
        let mut reference = hybrid(1);
        reference.dispatch(&dna).expect("runs");
        reference.dispatch(&adds).expect("runs");
        for threads in [2, 4] {
            let mut executor = hybrid(threads);
            executor.dispatch(&dna).expect("runs");
            executor.dispatch(&adds).expect("runs");
            assert_eq!(executor.trace(), reference.trace(), "{threads} threads");
        }
    }
}
