//! Work-partitioned dispatch: one workload split across both machines,
//! executed concurrently.
//!
//! Whole-workload dispatch ([`HybridExecutor::dispatch`]) picks a
//! machine and lets the other idle; when the calibrated scores are
//! close, nearly half the fleet's capacity is wasted. Split dispatch
//! instead partitions the workload's unit stream with a
//! [`SplitPlan`] — greedy makespan balancing over exact per-unit
//! scores — and runs the two shards *concurrently*: the CIM shard on
//! the calling thread, the host shard on a scoped worker. Makespan is
//! the slower shard, energy is the sum.
//!
//! Determinism carries through unchanged: a plan is a pure function of
//! the two certified shard estimates and the calibrator's scales (all
//! dyadic count-space currency), each shard run is bit-identical at
//! any thread count (the `cim-sim` batch contract), and the combined
//! ledger is defined as the deterministic merge of the two shard
//! ledgers, CIM first. The conservation contract for a split is
//! therefore: shard unit counts partition the workload's units, shard
//! checksums wrapping-sum to the whole workload's checksum, and
//! [`SplitOutcome::ledger`] equals the cell-wise merge of the two
//! shard ledgers bit-for-bit (`cim_verify::certify_split` audits the
//! claim-side of this).

use cim_sim::{ExecutionBackend, RunOutcome, SimError};
use cim_units::{CostLedger, Energy, SplitPlan, Time, UnitScore};
use cim_workloads::Shardable;
use serde::{Deserialize, Serialize};

use crate::hybrid::HybridExecutor;

/// Everything one split run produced: the plan, the per-machine shard
/// outcomes (absent for a side the plan left empty), and the combined
/// ledger (the deterministic merge of the shard ledgers, CIM first).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SplitOutcome {
    /// The partition the run executed.
    pub plan: SplitPlan,
    /// The CIM shard's outcome; `None` when the plan sent nothing
    /// there.
    pub cim: Option<RunOutcome>,
    /// The host shard's outcome; `None` when the plan sent nothing
    /// there.
    pub host: Option<RunOutcome>,
    /// The split workload's ledger: `merge(cim.ledger, host.ledger)`
    /// in that fixed order — energy sums, and per-cell counts
    /// partition the workload's op counts across the two machines'
    /// (disjoint) component cells.
    pub ledger: CostLedger,
}

impl SplitOutcome {
    /// The split's makespan: the slower shard's modelled time (the two
    /// machines run concurrently and the dispatcher waits for both).
    pub fn makespan(&self) -> Time {
        let side = |outcome: &Option<RunOutcome>| {
            outcome
                .as_ref()
                .map_or(Time::ZERO, |o| o.ledger.total_time())
        };
        let cim = side(&self.cim);
        let host = side(&self.host);
        if cim >= host {
            cim
        } else {
            host
        }
    }

    /// The split's energy: both shards' ledgers summed.
    pub fn energy(&self) -> Energy {
        self.ledger.total_energy()
    }

    /// Operations executed across both shards.
    pub fn operations(&self) -> u64 {
        let side =
            |outcome: &Option<RunOutcome>| outcome.as_ref().map_or(0, |o| o.digest.operations);
        side(&self.cim) + side(&self.host)
    }

    /// The wrapping sum of the shard checksums — equals the whole
    /// workload's checksum when the plan partitions its units (`None`
    /// if any executed shard produced no checksum).
    pub fn checksum(&self) -> Option<u64> {
        let mut sum = 0u64;
        for outcome in [&self.cim, &self.host].into_iter().flatten() {
            sum = sum.wrapping_add(outcome.digest.checksum?);
        }
        Some(sum)
    }

    /// Scores the split under `objective` with concurrent-execution
    /// semantics: total energy against the max-side makespan.
    pub fn score(&self, objective: cim_units::DispatchObjective) -> f64 {
        objective.score(self.energy(), self.makespan())
    }
}

impl<C, H> HybridExecutor<C, H> {
    /// Plans a split of `workload` across the two machines, both sized
    /// at `capacity` units: certifies the full-range shard on each
    /// machine, reduces the calibrated scores to exact per-unit
    /// [`UnitScore`]s, and greedily balances the makespan
    /// ([`SplitPlan::balance`], ties → CIM).
    ///
    /// The probe shard carries `capacity` as its machine size, so the
    /// scores price the *fixed-capacity* machines the split will
    /// actually run on — not machines elastically grown to the
    /// workload.
    pub fn split_plan<W>(&self, workload: &W, capacity: u64) -> SplitPlan
    where
        W: Shardable,
        C: ExecutionBackend<W::Shard>,
        H: ExecutionBackend<W::Shard>,
    {
        let units = workload.units();
        let probe = workload.shard(0, units, capacity);
        let cim_total = self
            .cim
            .estimate(&probe)
            .calibrated_score(self.objective(), self.calibrator().cim_scales());
        let host_total = self
            .host
            .estimate(&probe)
            .calibrated_score(self.objective(), self.calibrator().host_scales());
        SplitPlan::balance(
            units,
            UnitScore::per_unit(cim_total, units),
            UnitScore::per_unit(host_total, units),
        )
    }

    /// Executes `plan` over `workload`: the CIM shard (the unit prefix
    /// `0..cim_units`) runs on the calling thread while the host shard
    /// (the suffix) runs on a scoped worker — genuinely concurrent,
    /// with the combined ledger merged in fixed CIM-then-host order so
    /// the outcome is independent of which side finishes first. A side
    /// the plan left empty is skipped entirely.
    ///
    /// # Errors
    ///
    /// Propagates the first shard failure (CIM side reported first).
    ///
    /// # Panics
    ///
    /// Panics if the host shard's worker thread panics.
    pub fn run_split<W>(
        &self,
        workload: &W,
        capacity: u64,
        plan: &SplitPlan,
    ) -> Result<SplitOutcome, SimError>
    where
        W: Shardable,
        W::Shard: Sync,
        C: ExecutionBackend<W::Shard>,
        H: ExecutionBackend<W::Shard> + Sync,
    {
        let cim_shard =
            (plan.cim_units() > 0).then(|| workload.shard(0, plan.cim_units(), capacity));
        let host_shard = (plan.host_units() > 0)
            .then(|| workload.shard(plan.cim_units(), plan.host_units(), capacity));
        let host_backend = &self.host;
        let (cim_result, host_result) = std::thread::scope(|scope| {
            let host_handle = host_shard
                .as_ref()
                .map(|shard| scope.spawn(move || host_backend.run(shard)));
            let cim_result = cim_shard.as_ref().map(|shard| self.cim.run(shard));
            let host_result =
                host_handle.map(|handle| handle.join().expect("host shard worker panicked"));
            (cim_result, host_result)
        });
        let cim = cim_result.transpose()?;
        let host = host_result.transpose()?;
        let mut ledger = CostLedger::new();
        for outcome in [&cim, &host].into_iter().flatten() {
            ledger.merge(&outcome.ledger);
        }
        Ok(SplitOutcome {
            plan: *plan,
            cim,
            host,
            ledger,
        })
    }

    /// Plans and executes a split in one step:
    /// [`split_plan`](Self::split_plan) then
    /// [`run_split`](Self::run_split).
    ///
    /// # Errors
    ///
    /// Propagates the first shard failure (CIM side reported first).
    pub fn dispatch_split<W>(&self, workload: &W, capacity: u64) -> Result<SplitOutcome, SimError>
    where
        W: Shardable,
        W::Shard: Sync,
        C: ExecutionBackend<W::Shard>,
        H: ExecutionBackend<W::Shard> + Sync,
    {
        let plan = self.split_plan(workload, capacity);
        self.run_split(workload, capacity, &plan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cim_sim::{BatchPolicy, CimExecutor, ConventionalExecutor};
    use cim_units::DispatchObjective;
    use cim_workloads::AdditionWorkload;

    fn hybrid(
        threads: usize,
        objective: DispatchObjective,
    ) -> HybridExecutor<CimExecutor, ConventionalExecutor> {
        let policy = BatchPolicy::with_threads(threads);
        HybridExecutor::frozen(
            CimExecutor::with_batch(policy),
            ConventionalExecutor::with_batch(policy),
            objective,
        )
    }

    #[test]
    fn split_uses_both_machines_under_makespan() {
        let w = AdditionWorkload::scaled(1 << 14, 7);
        let capacity = 1 << 9;
        let executor = hybrid(2, DispatchObjective::Makespan);
        let plan = executor.split_plan(&w, capacity);
        assert!(!plan.is_all_cim() && !plan.is_all_host(), "{plan:?}");
        let outcome = executor.run_split(&w, capacity, &plan).expect("split runs");
        assert_eq!(outcome.operations(), w.n_ops);
        assert_eq!(outcome.checksum(), Some(w.checksum()));
        assert!(outcome.makespan() > Time::ZERO);
        assert!(outcome.energy() > Energy::ZERO);
        // Both shards really executed on their own machine.
        assert_eq!(outcome.cim.as_ref().unwrap().machine, "cim");
        assert_eq!(outcome.host.as_ref().unwrap().machine, "conventional");
    }

    #[test]
    fn split_beats_both_whole_runs_at_fixed_capacity() {
        // On fixed-capacity machines the split's makespan must beat
        // running the whole workload on either machine alone — the
        // reason split dispatch exists.
        let w = AdditionWorkload::scaled(1 << 14, 7);
        let capacity = 1 << 9;
        let executor = hybrid(2, DispatchObjective::Makespan);
        let outcome = executor.dispatch_split(&w, capacity).expect("split runs");
        use cim_workloads::Shardable;
        let whole = w.shard(0, w.units(), capacity);
        let cim_whole = ExecutionBackend::run(&executor.cim, &whole).expect("cim whole");
        let host_whole = ExecutionBackend::run(&executor.host, &whole).expect("host whole");
        let best_whole = cim_whole
            .ledger
            .total_time()
            .get()
            .min(host_whole.ledger.total_time().get());
        assert!(
            outcome.makespan().get() < best_whole,
            "split {} !< best whole {}",
            outcome.makespan().get(),
            best_whole
        );
    }

    #[test]
    fn one_sided_plans_match_the_solo_shard_run() {
        let w = AdditionWorkload::scaled(1 << 12, 9);
        let capacity = w.n_ops;
        let executor = hybrid(1, DispatchObjective::Energy);
        use cim_workloads::Shardable;
        let full = w.shard(0, w.units(), capacity);
        let score = UnitScore::new(1.0);

        let all_cim = SplitPlan::all_cim(w.n_ops, score, score);
        let outcome = executor.run_split(&w, capacity, &all_cim).expect("runs");
        assert!(outcome.host.is_none());
        let solo = ExecutionBackend::run(&executor.cim, &full).expect("solo cim");
        assert_eq!(outcome.cim.as_ref(), Some(&solo));
        assert_eq!(outcome.ledger, solo.ledger);

        let all_host = SplitPlan::all_host(w.n_ops, score, score);
        let outcome = executor.run_split(&w, capacity, &all_host).expect("runs");
        assert!(outcome.cim.is_none());
        let solo = ExecutionBackend::run(&executor.host, &full).expect("solo host");
        assert_eq!(outcome.host.as_ref(), Some(&solo));
        assert_eq!(outcome.ledger, solo.ledger);
    }

    #[test]
    fn split_outcomes_are_bit_identical_across_thread_counts() {
        let w = AdditionWorkload::scaled(1 << 13, 11);
        let capacity = 1 << 9;
        let reference = hybrid(1, DispatchObjective::Makespan);
        let reference_plan = reference.split_plan(&w, capacity);
        let reference_outcome = reference
            .run_split(&w, capacity, &reference_plan)
            .expect("reference split");
        for threads in [2usize, 4] {
            let executor = hybrid(threads, DispatchObjective::Makespan);
            let plan = executor.split_plan(&w, capacity);
            assert_eq!(plan, reference_plan, "plan drifted at {threads} threads");
            let outcome = executor.run_split(&w, capacity, &plan).expect("split");
            assert_eq!(
                outcome, reference_outcome,
                "split outcome drifted at {threads} threads"
            );
        }
    }

    #[test]
    fn combined_ledger_is_the_merge_of_the_shards() {
        let w = AdditionWorkload::scaled(1 << 12, 13);
        let capacity = 1 << 8;
        let executor = hybrid(2, DispatchObjective::Makespan);
        let outcome = executor.dispatch_split(&w, capacity).expect("split");
        let mut merged = outcome.cim.as_ref().expect("cim side").ledger.clone();
        merged.merge(&outcome.host.as_ref().expect("host side").ledger);
        assert_eq!(outcome.ledger, merged);
        // Per-cell op counts partition the workload: the two machines
        // charge disjoint component cells, so the combined count is
        // the sum of two shard counts summing to n per charged cell.
        assert_eq!(outcome.operations(), w.n_ops);
    }
}
