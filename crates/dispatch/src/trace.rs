//! The dispatch decision record: which machine was chosen, from what
//! certified scores, and how the prediction held up.
//!
//! The trace is the dispatcher's reproducibility surface: every field
//! is a pure function of the workload, the certified estimates, and
//! the (deterministic) run outcome, so two dispatch sequences over the
//! same workloads are equal — `DispatchTrace` derives `PartialEq`
//! precisely so tests and benches can assert bit-identity across
//! thread counts.

use cim_units::DispatchObjective;
use serde::{Deserialize, Serialize};

/// Which machine a dispatch decision routed to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Route {
    /// The computation-in-memory machine.
    Cim,
    /// The conventional (host) machine.
    Host,
}

impl Route {
    /// Stable label for reports and snapshots.
    pub fn label(self) -> &'static str {
        match self {
            Route::Cim => "cim",
            Route::Host => "host",
        }
    }
}

impl std::fmt::Display for Route {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// One routing decision, with the evidence it was made on.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DispatchDecision {
    /// The workload's self-description ([`cim_workloads::Workload::name`]).
    pub workload: String,
    /// The machine chosen.
    pub route: Route,
    /// The objective the scores were computed under.
    pub objective: DispatchObjective,
    /// The CIM machine's calibrated predicted score.
    pub cim_score: f64,
    /// The host machine's calibrated predicted score.
    pub host_score: f64,
    /// The chosen machine's *observed* score, once the run finished.
    pub observed_score: f64,
    /// True when the observed score of the chosen machine came out
    /// worse than the predicted score of the machine passed over — the
    /// decision would have flipped with perfect foresight of its own
    /// run. (The loser was never run, so its prediction is the best
    /// available counterfactual.)
    pub mispredicted: bool,
}

/// The ordered record of every dispatch decision an executor made.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct DispatchTrace {
    /// Decisions, in dispatch order.
    pub decisions: Vec<DispatchDecision>,
}

impl DispatchTrace {
    /// An empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of decisions recorded.
    pub fn len(&self) -> usize {
        self.decisions.len()
    }

    /// True when no decision has been recorded.
    pub fn is_empty(&self) -> bool {
        self.decisions.is_empty()
    }

    /// How many recorded decisions were mispredictions.
    pub fn mispredictions(&self) -> u64 {
        self.decisions.iter().filter(|d| d.mispredicted).count() as u64
    }

    /// Appends a decision.
    pub fn push(&mut self, decision: DispatchDecision) {
        self.decisions.push(decision);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traces_compare_bitwise() {
        let decision = DispatchDecision {
            workload: "additions n=1024".into(),
            route: Route::Host,
            objective: DispatchObjective::Energy,
            cim_score: 2.0e-10,
            host_score: 1.0e-10,
            observed_score: 1.0e-10,
            mispredicted: false,
        };
        let mut a = DispatchTrace::new();
        a.push(decision.clone());
        let mut b = DispatchTrace::new();
        b.push(decision);
        assert_eq!(a, b);
        assert_eq!(a.len(), 1);
        assert_eq!(a.mispredictions(), 0);
        assert_eq!(Route::Cim.to_string(), "cim");
    }
}
