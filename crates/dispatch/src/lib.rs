//! cim-dispatch: certificate-driven hybrid dispatch across the two
//! machines.
//!
//! The paper evaluates the CIM architecture *against* a conventional
//! machine; this crate makes that comparison operational. One brain —
//! the [`HybridExecutor`] — fronts both machines and routes each
//! workload to whichever one certified cost prefers:
//!
//! * **Prediction** comes from the `cim-sim` seam: every
//!   [`ExecutionBackend`](cim_sim::ExecutionBackend) can
//!   [`estimate`](cim_sim::ExecutionBackend::estimate) a workload as a
//!   [`CostEstimate`] — exact counts × dyadic
//!   prices, re-derivable bit for bit, never a free-form heuristic.
//! * **Decision** ([`hybrid`]) scores both estimates under a
//!   [`DispatchObjective`](cim_units::DispatchObjective) (energy,
//!   makespan, or energy-delay) and records every choice in a
//!   [`DispatchTrace`] that is bit-identical at any thread count.
//! * **Feedback** ([`calibrate`]) compares predicted against observed
//!   ledgers after each run and refines per-cell dyadic scale factors
//!   — exact count-space arithmetic, preserving the workspace's
//!   bit-for-bit conservation contract — with a frozen mode for
//!   reproducible benches.
//! * **Split execution** ([`split`]) partitions *one* workload's unit
//!   stream between the machines with a makespan-balancing
//!   [`SplitPlan`] over calibrated certified
//!   per-unit scores, then runs both shards concurrently
//!   ([`HybridExecutor::dispatch_split`]): makespan is the slower
//!   side, energy is the sum, and the combined ledger is the exact
//!   CIM-first merge of the shard ledgers.
//! * **Audit** ([`dispatch_claim`] / [`split_claim`]) bridges a
//!   decision into `cim-verify` currency: `cimlint` can certify that
//!   the ledger a route was scored from re-derives from its own
//!   counts, prices, and scales (`certify_dispatch`), and that a split
//!   decision conserves units and ledgers cell-bitwise
//!   (`certify_split`).
//!
//! The serving layer's per-query twin of this logic lives in
//! `cim_fabric::serve` (`DispatchPolicy`); this crate handles whole
//! workloads at the executor seam.

pub mod calibrate;
pub mod hybrid;
pub mod split;
pub mod trace;

pub use calibrate::{CalibrationMode, Calibrator};
pub use hybrid::HybridExecutor;
pub use split::SplitOutcome;
pub use trace::{DispatchDecision, DispatchTrace, Route};

use cim_sim::CostEstimate;
use cim_units::{ScaleTable, SplitPlan};
use cim_verify::{DispatchClaim, SplitClaim};

/// Bridges one dispatch decision into `cim-verify` currency: the claim
/// carries the estimate's counts and base prices plus the calibration
/// scales in force, and the predicted ledger the route was scored
/// from. `cim_verify::certify_dispatch` re-derives that ledger bit for
/// bit; any drift is a miscalibrated (or tampered) decision.
pub fn dispatch_claim(estimate: &CostEstimate, scales: &ScaleTable) -> DispatchClaim {
    DispatchClaim {
        machine: estimate.machine.to_string(),
        counts: estimate.counts.clone(),
        base_prices: estimate.prices.clone(),
        scales: scales.clone(),
        ledger: scales.rescale(&estimate.prices).evaluate(&estimate.counts),
    }
}

/// Bridges one *split* dispatch decision into `cim-verify` currency:
/// the plan's unit partition, one [`DispatchClaim`] per shard (built
/// from each machine's estimate of *its own shard* under its own
/// calibration scales), and the combined ledger as the exact CIM-first
/// merge of the shard claim ledgers. `cim_verify::certify_split`
/// re-derives every field cell-bitwise.
pub fn split_claim(
    plan: &SplitPlan,
    cim_estimate: &CostEstimate,
    host_estimate: &CostEstimate,
    cim_scales: &ScaleTable,
    host_scales: &ScaleTable,
) -> SplitClaim {
    let cim = dispatch_claim(cim_estimate, cim_scales);
    let host = dispatch_claim(host_estimate, host_scales);
    let mut combined = cim.ledger.clone();
    combined.merge(&host.ledger);
    SplitClaim {
        units: plan.units(),
        cim_units: plan.cim_units(),
        host_units: plan.host_units(),
        cim,
        host,
        combined,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cim_sim::{CimExecutor, ConventionalExecutor, ExecutionBackend};
    use cim_units::{Component, Phase};
    use cim_workloads::{AdditionWorkload, Shardable};

    #[test]
    fn dispatch_claims_from_real_estimates_certify_clean() {
        let estimate = CimExecutor::new().estimate(&AdditionWorkload::scaled(4_096, 3));
        let mut scales = ScaleTable::identity();
        scales.set(Component::CrossbarWrite, Phase::Add, 1.25, 0.75);
        let claim = dispatch_claim(&estimate, &scales);
        assert!(cim_verify::certify_dispatch("adds", &claim).is_clean());
        // Tampering with the claimed ledger is caught.
        let mut forged = claim;
        forged.ledger = estimate.prices.evaluate(&estimate.counts);
        assert!(cim_verify::certify_dispatch("adds", &forged).has_code("dispatch-claim-mismatch"));
    }

    #[test]
    fn split_claims_from_real_shard_estimates_certify_clean() {
        let workload = AdditionWorkload::scaled(1 << 12, 3);
        let capacity = 1 << 9;
        let executor = HybridExecutor::frozen(
            CimExecutor::new(),
            ConventionalExecutor::new(),
            cim_units::DispatchObjective::Makespan,
        );
        let plan = executor.split_plan(&workload, capacity);
        let cim_est = executor
            .cim
            .estimate(&workload.shard(0, plan.cim_units(), capacity));
        let host_est =
            executor
                .host
                .estimate(&workload.shard(plan.cim_units(), plan.host_units(), capacity));
        let claim = split_claim(
            &plan,
            &cim_est,
            &host_est,
            executor.calibrator().cim_scales(),
            executor.calibrator().host_scales(),
        );
        assert!(cim_verify::certify_split("adds-split", &claim).is_clean());
        // Skimming the combined ledger down to one side is caught.
        let mut skimmed = claim;
        skimmed.combined = skimmed.cim.ledger.clone();
        assert!(
            cim_verify::certify_split("adds-split", &skimmed).has_code("split-ledger-conservation")
        );
    }
}
