//! cim-dispatch: certificate-driven hybrid dispatch across the two
//! machines.
//!
//! The paper evaluates the CIM architecture *against* a conventional
//! machine; this crate makes that comparison operational. One brain —
//! the [`HybridExecutor`] — fronts both machines and routes each
//! workload to whichever one certified cost prefers:
//!
//! * **Prediction** comes from the `cim-sim` seam: every
//!   [`ExecutionBackend`](cim_sim::ExecutionBackend) can
//!   [`estimate`](cim_sim::ExecutionBackend::estimate) a workload as a
//!   [`CostEstimate`] — exact counts × dyadic
//!   prices, re-derivable bit for bit, never a free-form heuristic.
//! * **Decision** ([`hybrid`]) scores both estimates under a
//!   [`DispatchObjective`](cim_units::DispatchObjective) (energy,
//!   makespan, or energy-delay) and records every choice in a
//!   [`DispatchTrace`] that is bit-identical at any thread count.
//! * **Feedback** ([`calibrate`]) compares predicted against observed
//!   ledgers after each run and refines per-cell dyadic scale factors
//!   — exact count-space arithmetic, preserving the workspace's
//!   bit-for-bit conservation contract — with a frozen mode for
//!   reproducible benches.
//! * **Audit** ([`dispatch_claim`]) bridges a decision into
//!   `cim-verify` currency: `cimlint` can certify that the ledger a
//!   route was scored from re-derives from its own counts, prices, and
//!   scales (`certify_dispatch`).
//!
//! The serving layer's per-query twin of this logic lives in
//! `cim_fabric::serve` (`DispatchPolicy`); this crate handles whole
//! workloads at the executor seam.

pub mod calibrate;
pub mod hybrid;
pub mod trace;

pub use calibrate::{CalibrationMode, Calibrator};
pub use hybrid::HybridExecutor;
pub use trace::{DispatchDecision, DispatchTrace, Route};

use cim_sim::CostEstimate;
use cim_units::ScaleTable;
use cim_verify::DispatchClaim;

/// Bridges one dispatch decision into `cim-verify` currency: the claim
/// carries the estimate's counts and base prices plus the calibration
/// scales in force, and the predicted ledger the route was scored
/// from. `cim_verify::certify_dispatch` re-derives that ledger bit for
/// bit; any drift is a miscalibrated (or tampered) decision.
pub fn dispatch_claim(estimate: &CostEstimate, scales: &ScaleTable) -> DispatchClaim {
    DispatchClaim {
        machine: estimate.machine.to_string(),
        counts: estimate.counts.clone(),
        base_prices: estimate.prices.clone(),
        scales: scales.clone(),
        ledger: scales.rescale(&estimate.prices).evaluate(&estimate.counts),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cim_sim::{CimExecutor, ExecutionBackend};
    use cim_units::{Component, Phase};
    use cim_workloads::AdditionWorkload;

    #[test]
    fn dispatch_claims_from_real_estimates_certify_clean() {
        let estimate = CimExecutor::new().estimate(&AdditionWorkload::scaled(4_096, 3));
        let mut scales = ScaleTable::identity();
        scales.set(Component::CrossbarWrite, Phase::Add, 1.25, 0.75);
        let claim = dispatch_claim(&estimate, &scales);
        assert!(cim_verify::certify_dispatch("adds", &claim).is_clean());
        // Tampering with the claimed ledger is caught.
        let mut forged = claim;
        forged.ledger = estimate.prices.evaluate(&estimate.counts);
        assert!(cim_verify::certify_dispatch("adds", &forged).has_code("dispatch-claim-mismatch"));
    }
}
